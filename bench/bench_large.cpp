// Million-state substrate record, written to BENCH_large.json (CWD, or the
// path given as argv[1]).
//
// Three measurements over the streamed generator workloads (grid mesh,
// crowd epidemic, virus spread — the largest a 1024x1024 grid with 2^20
// states):
//   1. substrate    — streamed BFS-into-CSR build time, model shape, and the
//      process peak RSS after the build (states vs wall clock vs memory);
//   2. check        — a full time-bounded until query through the checker
//      (the backward-series P1 path on every workload here), reporting the
//      sound interval verdict plus the backward series' term count and
//      steady-state detection accounting;
//   3. blocked_spmv — the SELL-C blocked kernel vs the reference CSR gather
//      on the workload's uniformized P^T at 1 and 8 threads, with a bitwise
//      agreement gate (memcmp) that decides the exit code.
//
// A fourth section replays the stiff M/M/1/50 queue (Lambda*t ~ 1e5 Poisson
// terms) with steady-state detection off and on: terms saved, the reported
// fold error, the observed max deviation, and a threshold-verdict agreement
// check that also gates the exit code. `--smoke` shrinks every workload so
// the bench-smoke ctest lane finishes in well under a second.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "checker/until.hpp"
#include "linalg/blocked_csr.hpp"
#include "models/generator.hpp"
#include "models/mm1k.hpp"
#include "numeric/transient.hpp"
#include "obs/stats.hpp"

namespace {

using namespace csrlmrm;

int g_repeats = 2;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double best_of(Fn&& fn) {
  double best = 1e300;
  for (int repeat = 0; repeat < g_repeats; ++repeat) {
    const double start = now_ms();
    fn();
    best = std::min(best, now_ms() - start);
  }
  return best;
}

/// Process peak RSS in MiB (ru_maxrss is KiB on Linux). Monotone over the
/// process lifetime, so per-workload values read as "peak after this build".
double peak_rss_mib() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> x(n, 0.0);
  std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    x[i] = static_cast<double>(state >> 11) * 0x1.0p-53 + 0x1.0p-60;
  }
  return x;
}

struct SpmvRecord {
  double csr_ms_1t = 0.0;
  double csr_ms_8t = 0.0;
  double blocked_ms_1t = 0.0;
  double blocked_ms_8t = 0.0;
  bool bitwise_identical = true;
  double padding_ratio = 0.0;  // padded slots / real non-zeros
};

/// Times `iters` repeated multiplies of the gather CSR vs its blocked
/// repack and memcmp-gates the outputs at 1, 2, and 8 threads.
SpmvRecord measure_spmv(const linalg::CsrMatrix& gather, int iters) {
  SpmvRecord record;
  const linalg::BlockedCsrMatrix blocked(gather);
  record.padding_ratio =
      gather.non_zeros() == 0
          ? 0.0
          : static_cast<double>(blocked.padded_entries()) /
                static_cast<double>(gather.non_zeros());
  const std::vector<double> x = random_vector(gather.cols(), 7);
  std::vector<double> reference(gather.rows(), 0.0);
  gather.multiply_into(x, reference, 1);
  std::vector<double> y(gather.rows(), 0.0);
  for (const unsigned threads : {1u, 2u, 8u}) {
    blocked.multiply_into(x, y, threads);
    if (std::memcmp(y.data(), reference.data(), y.size() * sizeof(double)) != 0) {
      record.bitwise_identical = false;
    }
  }
  record.csr_ms_1t = best_of([&] {
    for (int i = 0; i < iters; ++i) gather.multiply_into(x, y, 1);
  });
  record.csr_ms_8t = best_of([&] {
    for (int i = 0; i < iters; ++i) gather.multiply_into(x, y, 8);
  });
  record.blocked_ms_1t = best_of([&] {
    for (int i = 0; i < iters; ++i) blocked.multiply_into(x, y, 1);
  });
  record.blocked_ms_8t = best_of([&] {
    for (int i = 0; i < iters; ++i) blocked.multiply_into(x, y, 8);
  });
  return record;
}

struct WorkloadRecord {
  std::string spec;
  std::string target;
  double horizon = 0.0;
  std::size_t states = 0;
  std::size_t transitions = 0;
  double explore_ms = 0.0;
  double peak_rss_mib = 0.0;
  double check_ms = 0.0;
  double probability = 0.0;
  double error_bound = 0.0;
  double interval_lower = 0.0;
  double interval_upper = 0.0;
  std::size_t series_terms = 0;
  bool steady_detected = false;
  std::size_t terms_saved = 0;
  SpmvRecord spmv;
};

void print_workload(std::FILE* out, const WorkloadRecord& r, bool last) {
  std::fprintf(out, "    {\n");
  std::fprintf(out, "      \"spec\": \"%s\",\n", r.spec.c_str());
  std::fprintf(out, "      \"states\": %zu,\n", r.states);
  std::fprintf(out, "      \"transitions\": %zu,\n", r.transitions);
  std::fprintf(out, "      \"explore_ms\": %.1f,\n", r.explore_ms);
  std::fprintf(out, "      \"peak_rss_mib_after_build\": %.1f,\n", r.peak_rss_mib);
  std::fprintf(out, "      \"check\": {\n");
  std::fprintf(out, "        \"query\": \"P=? [ true U[0,%g] %s ] from state 0\",\n",
               r.horizon, r.target.c_str());
  std::fprintf(out, "        \"check_ms\": %.1f,\n", r.check_ms);
  std::fprintf(out, "        \"probability\": %.12g,\n", r.probability);
  std::fprintf(out, "        \"error_bound\": %.3e,\n", r.error_bound);
  std::fprintf(out, "        \"interval\": [%.12g, %.12g],\n", r.interval_lower,
               r.interval_upper);
  std::fprintf(out, "        \"series_terms\": %zu,\n", r.series_terms);
  std::fprintf(out, "        \"steady_state_detected\": %s,\n",
               r.steady_detected ? "true" : "false");
  std::fprintf(out, "        \"terms_saved\": %zu\n      },\n", r.terms_saved);
  std::fprintf(out, "      \"blocked_spmv\": {\n");
  std::fprintf(out, "        \"csr_ms\": {\"1\": %.2f, \"8\": %.2f},\n", r.spmv.csr_ms_1t,
               r.spmv.csr_ms_8t);
  std::fprintf(out, "        \"blocked_ms\": {\"1\": %.2f, \"8\": %.2f},\n",
               r.spmv.blocked_ms_1t, r.spmv.blocked_ms_8t);
  std::fprintf(out, "        \"speedup_vs_csr\": {\"1\": %.2f, \"8\": %.2f},\n",
               r.spmv.csr_ms_1t / r.spmv.blocked_ms_1t,
               r.spmv.csr_ms_8t / r.spmv.blocked_ms_8t);
  std::fprintf(out, "        \"padding_ratio\": %.3f,\n", r.spmv.padding_ratio);
  std::fprintf(out, "        \"bitwise_identical\": %s\n      }\n    }%s\n",
               r.spmv.bitwise_identical ? "true" : "false", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_large.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
      g_repeats = 1;
    } else {
      out_path = argv[i];
    }
  }

  struct WorkloadSpec {
    const char* spec;
    const char* target;
    double horizon;
  };
  // Horizons are sized so the queried probability is neither 0 nor 1 to all
  // digits (the packet walk's net drift velocity puts delivery around
  // distance/|v|) while Lambda*t stays in the low thousands; the stiff
  // Lambda*t ~ 1e5 regime lives in the dedicated steady-state section below.
  // The smoke grid deliberately stays under the backward-until threshold so
  // the lane also exercises the forward fan-out route end to end.
  const std::vector<WorkloadSpec> specs =
      smoke ? std::vector<WorkloadSpec>{{"grid:width=24,height=24", "delivered", 10.0},
                                        {"crowd:population=30", "outbreak", 5.0},
                                        {"virus:hosts=8", "clean", 4.0}}
            : std::vector<WorkloadSpec>{{"grid:width=256,height=256", "delivered", 300.0},
                                        {"grid:width=1024,height=1024,drift=4", "delivered",
                                         400.0},
                                        {"crowd:population=600", "outbreak", 20.0},
                                        {"virus:hosts=18", "clean", 6.0}};
  const int spmv_iters = smoke ? 3 : 20;

  bool all_gates_passed = true;
  std::vector<WorkloadRecord> workloads;
  for (const WorkloadSpec& spec : specs) {
    WorkloadRecord record;
    record.spec = spec.spec;
    record.target = spec.target;
    record.horizon = spec.horizon;

    const double explore_start = now_ms();
    const core::Mrm model = models::make_generated_mrm(spec.spec);
    record.explore_ms = now_ms() - explore_start;
    record.states = model.num_states();
    record.transitions = model.rates().matrix().non_zeros();
    record.peak_rss_mib = peak_rss_mib();

    const std::vector<bool> target = model.labels().states_with(spec.target);
    checker::CheckerOptions options;
    options.transient.detect_steady_state = true;
    // Stats stay on for the timed check: the series term count and
    // steady-state accounting come from the counters the run leaves behind,
    // and counter increments are noise next to the SpMV terms they count.
    obs::set_stats_enabled(true);
    obs::StatsRegistry::global().reset();
    const double check_start = now_ms();
    const auto values =
        checker::until_probabilities(model, std::vector<bool>(record.states, true), target,
                                     logic::up_to(spec.horizon), logic::Interval{}, options);
    record.check_ms = now_ms() - check_start;
    record.series_terms = obs::StatsRegistry::global().counter("transient.series_terms");
    record.steady_detected =
        obs::StatsRegistry::global().counter("uniformization.steady_detected") > 0;
    record.terms_saved = obs::StatsRegistry::global().counter("uniformization.terms_saved");
    obs::StatsRegistry::global().reset();
    obs::set_stats_enabled(false);
    record.probability = values[0].probability;
    record.error_bound = values[0].error_bound;
    record.interval_lower = values[0].bound.lower;
    record.interval_upper = values[0].bound.upper;
    if (!values[0].bound.contains(values[0].probability)) all_gates_passed = false;

    double lambda = 0.0;
    const linalg::CsrMatrix p = numeric::uniformized_transition_matrix(model.rates(), lambda);
    record.spmv = measure_spmv(p.transposed(), spmv_iters);
    if (!record.spmv.bitwise_identical) all_gates_passed = false;

    std::printf("%s: %zu states, explore %.0f ms, check %.0f ms, p=%.6f, "
                "blocked speedup %.2fx/%.2fx (1t/8t)%s\n",
                record.spec.c_str(), record.states, record.explore_ms, record.check_ms,
                record.probability, record.spmv.csr_ms_1t / record.spmv.blocked_ms_1t,
                record.spmv.csr_ms_8t / record.spmv.blocked_ms_8t,
                record.spmv.bitwise_identical ? "" : "  BITWISE MISMATCH");
    workloads.push_back(std::move(record));
  }

  // Steady-state detection on the stiff regime: an overloaded M/M/1/50 queue
  // at Lambda*t ~ 1e5 Poisson terms, where the chain reaches equilibrium
  // long before the Fox-Glynn right edge.
  models::Mm1kConfig stiff;
  stiff.capacity = 50;
  stiff.arrival_rate = 100.0;
  stiff.service_rate = 120.0;
  const core::Mrm queue = models::make_mm1k(stiff);
  const double stiff_t = smoke ? 50.0 : 500.0;
  std::vector<double> initial(queue.num_states(), 0.0);
  initial[0] = 1.0;

  numeric::TransientOptions detect_off;
  numeric::TransientOptions detect_on;
  detect_on.detect_steady_state = true;
  detect_on.steady_epsilon = 1e-10;
  const auto full_run =
      numeric::transient_distribution_checked(queue.rates(), initial, stiff_t, detect_off);
  const auto cut_run =
      numeric::transient_distribution_checked(queue.rates(), initial, stiff_t, detect_on);
  const double full_ms = best_of([&] {
    numeric::transient_distribution_checked(queue.rates(), initial, stiff_t, detect_off);
  });
  const double cut_ms = best_of([&] {
    numeric::transient_distribution_checked(queue.rates(), initial, stiff_t, detect_on);
  });
  double max_abs_diff = 0.0;
  for (std::size_t s = 0; s < full_run.values.size(); ++s) {
    max_abs_diff = std::max(max_abs_diff, std::abs(full_run.values[s] - cut_run.values[s]));
  }
  // Threshold verdicts must agree: classify every state against p >= 0.02
  // (a line several queue-length states straddle closely) using each run's
  // rigorous band; disagreement fails the bench.
  const double threshold = 0.02;
  bool verdicts_agree = true;
  const double full_band = detect_off.epsilon;
  const double cut_band = detect_on.epsilon + cut_run.steady_error;
  for (std::size_t s = 0; s < full_run.values.size(); ++s) {
    const bool full_above = full_run.values[s] + full_band >= threshold;
    const bool cut_above = cut_run.values[s] + cut_band >= threshold;
    if (full_above != cut_above) verdicts_agree = false;
  }
  if (!verdicts_agree) all_gates_passed = false;
  if (!cut_run.steady_state_detected && !smoke) all_gates_passed = false;
  std::printf("steady-state detection: %zu -> %zu terms (saved %zu), "
              "max diff %.2e, verdicts %s\n",
              full_run.series_terms, cut_run.series_terms,
              full_run.series_terms - cut_run.series_terms, max_abs_diff,
              verdicts_agree ? "agree" : "DISAGREE");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_large: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"note\": \"timings are best-of-%d wall clock; peak RSS is the "
               "process-wide high-water mark after each build (monotone across rows); "
               "blocked-vs-CSR speedups measure the same gather product repacked into "
               "SELL-C chunks, gated on bitwise-identical outputs; when "
               "hardware_threads is below a worker count that column measures "
               "dispatch overhead, not scaling\",\n",
               g_repeats);
  std::fprintf(out, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    print_workload(out, workloads[i], i + 1 == workloads.size());
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"steady_state_detection\": {\n");
  std::fprintf(out, "    \"model\": \"mm1k(capacity=50, arrival=100, service=120)\",\n");
  std::fprintf(out, "    \"t\": %g,\n", stiff_t);
  std::fprintf(out, "    \"steady_epsilon\": %.1e,\n", detect_on.steady_epsilon);
  std::fprintf(out, "    \"series_terms_full\": %zu,\n", full_run.series_terms);
  std::fprintf(out, "    \"series_terms_detected\": %zu,\n", cut_run.series_terms);
  std::fprintf(out, "    \"terms_saved\": %zu,\n",
               full_run.series_terms - cut_run.series_terms);
  std::fprintf(out, "    \"detected\": %s,\n",
               cut_run.steady_state_detected ? "true" : "false");
  std::fprintf(out, "    \"full_ms\": %.2f,\n    \"detected_ms\": %.2f,\n", full_ms, cut_ms);
  std::fprintf(out, "    \"speedup\": %.2f,\n", full_ms / cut_ms);
  std::fprintf(out, "    \"reported_steady_error\": %.3e,\n", cut_run.steady_error);
  std::fprintf(out, "    \"max_abs_diff_vs_full\": %.3e,\n", max_abs_diff);
  std::fprintf(out, "    \"threshold_verdicts_agree\": %s\n  },\n",
               verdicts_agree ? "true" : "false");
  std::fprintf(out, "  \"all_bitwise_gates_passed\": %s\n}\n",
               all_gates_passed ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return all_gates_passed ? 0 : 1;
}

// Shared harness for the table/figure reproduction benches: runs one until
// experiment (fixed Phi/Psi state formulas over one model) with either
// numerical engine, timing each query, and prints paper-style table rows.
#pragma once

#include <cstddef>
#include <string>

#include "core/mrm.hpp"
#include "core/transform.hpp"
#include "numeric/class_explorer.hpp"
#include "numeric/path_explorer.hpp"

namespace csrlmrm::benchsupport {

/// One until experiment: Phi U^[0,t]_[0,r] Psi over a fixed model, with Phi
/// and Psi given as CSRL *state* formulas (e.g. "Sup", "failed", "TT").
class UntilExperiment {
 public:
  UntilExperiment(const core::Mrm& model, const std::string& phi, const std::string& psi);

  struct Result {
    double probability = 0.0;
    double error_bound = 0.0;  // 0 for discretization (no a-priori bound)
    double seconds = 0.0;
    std::size_t paths_stored = 0;
    std::size_t signature_classes = 0;
    std::size_t nodes_expanded = 0;
  };

  /// Uniformization/DFPG with truncation probability w (section 4.6).
  Result uniformization(core::StateIndex start, double t, double r, double w,
                        bool aggregate_signatures = true) const;

  /// Discretization with step d (section 4.5).
  Result discretization(core::StateIndex start, double t, double r, double d) const;

  /// Signature-class DP over a batch of start states (one frontier sweep for
  /// the whole batch, see class_explorer.hpp). Every returned Result carries
  /// the batch's total wall-clock seconds and the shared diagnostic counts.
  /// `adaptive_hybrid` arms the coarsen/DFS-hand-off escalation — the classdp
  /// configuration the checker's --until-engine=auto runs.
  std::vector<Result> classdp_batch(const std::vector<core::StateIndex>& starts, double t,
                                    double r, double w, unsigned threads = 0,
                                    bool adaptive_hybrid = false) const;

  const core::Mrm& transformed_model() const { return transformed_; }
  const std::vector<bool>& psi_mask() const { return psi_; }
  const std::vector<bool>& dead_mask() const { return dead_; }

 private:
  struct Prepared {
    core::Mrm transformed;
    std::vector<bool> psi;
    std::vector<bool> dead;
  };
  static Prepared prepare(const core::Mrm& model, const std::string& phi,
                          const std::string& psi);
  explicit UntilExperiment(Prepared prepared);

  core::Mrm transformed_;  // M[!Phi v Psi]
  std::vector<bool> psi_;
  std::vector<bool> dead_;
  numeric::UniformizationUntilEngine engine_;
  numeric::SignatureClassUntilEngine class_engine_;
};

/// Prints the standard bench header: title plus the model/formula recap.
void print_header(const std::string& title, const std::string& subtitle);

/// Value formatting mirroring the thesis tables (long decimal P, scientific
/// E, fixed-point seconds).
std::string format_probability(double p);
std::string format_error(double e);
std::string format_seconds(double s);

}  // namespace csrlmrm::benchsupport

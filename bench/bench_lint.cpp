// csrlmrm-lint whole-tree scan record, written to BENCH_lint.json (CWD, or
// the path given as argv[1]).
//
// Workload: the same scan the lint_tree test runs — every C++ source under
// src/ tests/ bench/ examples/ tools/ (fixture corpora skipped by the
// walker). Three lanes:
//
//   serial   — threads=1, no cache: the v1 baseline configuration;
//   parallel — threads=0 (process default), no cache: the src/parallel
//     chunked scan with results merged in sorted-path order;
//   warm     — threads=1 with the incremental cache pre-populated: every
//     file satisfied by content-hash lookup, measuring the cache floor
//     (read + hash + JSON replay, no analysis).
//
// The serial and parallel reports must be byte-identical ("identical" lands
// in the JSON and gates the exit code) — parallelism buys the same bytes
// faster or it does not count. --smoke shrinks the workload to tools/ and
// one repetition so the bench-smoke lane stays fast.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "driver.hpp"
#include "obs/json.hpp"

namespace {

int g_repeats = 3;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double best_of(Fn&& fn) {
  fn();  // untimed warmup: page in the sources, size the allocator pools
  double best = 1e300;
  for (int repeat = 0; repeat < g_repeats; ++repeat) {
    const double start = now_ms();
    fn();
    best = best < now_ms() - start ? best : now_ms() - start;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csrlmrm;

  std::string out_path = "BENCH_lint.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_repeats = 1;
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const std::string root = CSRLMRM_SOURCE_DIR;
  std::vector<std::string> paths;
  if (smoke) {
    paths = {root + "/tools"};
  } else {
    paths = {root + "/src", root + "/tests", root + "/bench", root + "/examples",
             root + "/tools"};
  }

  // --- serial lane --------------------------------------------------------
  lint::LintOptions serial_options;
  serial_options.threads = 1;
  lint::LintReport serial_report;
  const double serial_ms =
      best_of([&] { serial_report = lint::lint_paths(paths, serial_options); });

  // --- parallel lane ------------------------------------------------------
  lint::LintOptions parallel_options;
  parallel_options.threads = 0;  // process default
  lint::LintReport parallel_report;
  const double parallel_ms =
      best_of([&] { parallel_report = lint::lint_paths(paths, parallel_options); });

  const bool identical = obs::write_json(lint::report_to_json(serial_report)) ==
                         obs::write_json(lint::report_to_json(parallel_report));

  // --- warm-cache lane ----------------------------------------------------
  const std::string cache_path =
      (std::filesystem::temp_directory_path() / "BENCH_lint.cache.json").string();
  std::filesystem::remove(cache_path);
  lint::LintOptions warm_options;
  warm_options.threads = 1;
  warm_options.cache_path = cache_path;
  lint::lint_paths(paths, warm_options);  // populate
  lint::LintReport warm_report;
  const double warm_ms =
      best_of([&] { warm_report = lint::lint_paths(paths, warm_options); });
  std::filesystem::remove(cache_path);

  const double parallel_speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  const double warm_speedup = warm_ms > 0.0 ? serial_ms / warm_ms : 0.0;
  std::printf("lint scan bench (%zu files, best of %d)\n", serial_report.files_scanned,
              g_repeats);
  std::printf("  serial:    %8.3f ms\n  parallel:  %8.3f ms (%.2fx)\n",
              serial_ms, parallel_ms, parallel_speedup);
  std::printf("  warm:      %8.3f ms (%.2fx, %zu cached)\n", warm_ms, warm_speedup,
              warm_report.files_cached);
  std::printf("  serial/parallel reports identical: %s\n", identical ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"lint_scan\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"files\": %zu,\n", serial_report.files_scanned);
  std::fprintf(out, "  \"diagnostics\": %zu,\n", serial_report.diagnostics.size());
  std::fprintf(out, "  \"repeats\": %d,\n", g_repeats);
  std::fprintf(out, "  \"serial_ms\": %.3f,\n", serial_ms);
  std::fprintf(out, "  \"parallel_ms\": %.3f,\n", parallel_ms);
  std::fprintf(out, "  \"parallel_speedup\": %.2f,\n", parallel_speedup);
  std::fprintf(out, "  \"warm_cache_ms\": %.3f,\n", warm_ms);
  std::fprintf(out, "  \"warm_cache_speedup\": %.2f,\n", warm_speedup);
  std::fprintf(out, "  \"warm_files_cached\": %zu,\n", warm_report.files_cached);
  std::fprintf(out, "  \"reports_identical\": %s\n}\n", identical ? "true" : "false");
  std::fclose(out);

  return identical ? 0 : 1;
}

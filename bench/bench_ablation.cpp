// Ablations for the design choices DESIGN.md calls out:
//  1. (k,j)-signature aggregation before Omega (section 4.4.2's
//     recomputation avoidance) vs one Omega call per stored path.
//  2. Linear-solver choice for the steady-state/BSCC machinery:
//     Gauss-Seidel (the thesis's choice) vs Jacobi vs dense elimination.
#include <chrono>
#include <cstdio>

#include "bench_support.hpp"
#include "checker/steady.hpp"
#include "linalg/dense_solve.hpp"
#include "linalg/gauss_seidel.hpp"
#include "linalg/jacobi.hpp"
#include "models/tmr.hpp"

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}
}  // namespace

int main() {
  using namespace csrlmrm;

  benchsupport::print_header("Ablation 1 - path-signature aggregation before Omega",
                             "TMR, P[Sup U[0,t][0,3000] failed], w = 1e-11");
  {
    const core::Mrm model = models::make_tmr(models::TmrConfig{});
    benchsupport::UntilExperiment experiment(model, "Sup", "failed");
    std::printf("%-5s  %-12s  %-12s  %-10s  %-10s  %-10s\n", "t", "T_aggr(s)", "T_perpath(s)",
                "paths", "classes", "|dP|");
    for (double t : {100.0, 200.0, 300.0}) {
      const auto aggregated = experiment.uniformization(0, t, 3000.0, 1e-11, true);
      const auto per_path = experiment.uniformization(0, t, 3000.0, 1e-11, false);
      std::printf("%-5.0f  %-12.4f  %-12.4f  %-10zu  %-10zu  %-10.2e\n", t,
                  aggregated.seconds, per_path.seconds, per_path.paths_stored,
                  aggregated.signature_classes,
                  std::abs(aggregated.probability - per_path.probability));
    }
    std::printf("\nExpected: identical P (|dP| ~ 1e-16); aggregation calls Omega once per\n"
                "signature class instead of once per path, so it wins once paths >> classes.\n\n");
  }

  benchsupport::print_header("Ablation 2 - linear solver for steady-state analysis",
                             "41-module NMR (43 states), pi Q = 0 via three solvers");
  {
    models::TmrConfig config;
    config.num_modules = 41;
    const core::Mrm model = models::make_tmr(config);

    auto timed_steady = [&](const char* name, auto&& run) {
      const auto begin = std::chrono::steady_clock::now();
      const double value = run();
      std::printf("%-16s  pi(failed) = %-22.15g  T = %.4fs\n", name, value,
                  seconds_since(begin));
    };

    const auto failed = model.labels().states_with("failed");
    timed_steady("Gauss-Seidel", [&] {
      return checker::steady_state_probability_of_set(model, failed)[0];
    });

    // Jacobi / dense ablations solve the same irreducible system directly:
    // replace the last balance equation with the normalization constraint.
    const auto generator = model.rates().generator();
    const std::size_t n = model.num_states();
    auto dense_system = [&] {
      auto a = generator.transposed().to_dense();
      std::vector<double> b(n, 0.0);
      for (std::size_t c = 0; c < n; ++c) a[n - 1][c] = 1.0;
      b[n - 1] = 1.0;
      return std::pair{a, b};
    };
    timed_steady("dense Gaussian", [&] {
      auto [a, b] = dense_system();
      const auto pi = linalg::dense_solve(a, b);
      double mass = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        if (failed[s]) mass += pi[s];
      }
      return mass;
    });
    timed_steady("Jacobi", [&] {
      // Jacobi on the normalized system diverges for this generator (no
      // diagonal dominance after the normalization row), so run it on the
      // regularized form (I + Q^T/Lambda) like a power iteration.
      const double lambda = model.rates().max_exit_rate();
      linalg::CsrBuilder builder(n, n);
      const auto qt = generator.transposed();
      for (std::size_t row = 0; row < n; ++row) {
        for (const auto& e : qt.row(row)) builder.add(row, e.col, e.value / lambda);
      }
      const auto m = builder.build();  // pi' = pi (I + Q/Lambda) fixpoint
      std::vector<double> pi(n, 1.0 / static_cast<double>(n));
      for (int iteration = 0; iteration < 200000; ++iteration) {
        auto next = m.multiply(pi);
        double delta = 0.0;
        for (std::size_t s = 0; s < n; ++s) {
          next[s] += pi[s];
          delta = std::max(delta, std::abs(next[s] - pi[s]));
        }
        double total = 0.0;
        for (const double v : next) total += v;
        for (double& v : next) v /= total;
        pi.swap(next);
        if (delta < 1e-13) break;
      }
      double mass = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        if (failed[s]) mass += pi[s];
      }
      return mass;
    });
    std::printf("\nExpected: all three agree to ~1e-10; Gauss-Seidel needs far fewer\n"
                "sweeps than the power/Jacobi iteration on this stiff chain.\n\n");
  }

  benchsupport::print_header(
      "Ablation 3 - depth truncation (eq. 4.3) vs path truncation (eq. 4.4)",
      "TMR, P[Sup U[0,300][0,3000] failed]; depth N sweeps vs w sweeps");
  {
    const core::Mrm model = models::make_tmr(models::TmrConfig{});
    const auto sup = model.labels().states_with("Sup");
    const auto failed = model.labels().states_with("failed");
    std::vector<bool> absorb(model.num_states());
    std::vector<bool> dead(model.num_states());
    for (core::StateIndex s = 0; s < model.num_states(); ++s) {
      absorb[s] = !sup[s] || failed[s];
      dead[s] = !sup[s] && !failed[s];
    }
    numeric::UniformizationUntilEngine engine(core::make_absorbing(model, absorb), failed,
                                              dead);
    const double t = 300.0;
    const double r = 3000.0;

    std::printf("%-24s  %-22s  %-13s  %-10s\n", "truncation", "P", "E", "nodes");
    for (const std::size_t depth : {10u, 20u, 30u, 40u, 60u}) {
      numeric::PathExplorerOptions options;
      options.truncation_probability = 1e-14;  // effectively depth-only cut
      options.depth_truncation = depth;
      const auto result = engine.compute(0, t, r, options);
      std::printf("depth N = %-14zu  %-22.17g  %-13.6e  %-10zu\n", depth, result.probability,
                  result.error_bound, result.nodes_expanded);
    }
    for (const double w : {1e-8, 1e-10, 1e-12}) {
      numeric::PathExplorerOptions options;
      options.truncation_probability = w;
      const auto result = engine.compute(0, t, r, options);
      std::printf("path w = %-15.0e  %-22.17g  %-13.6e  %-10zu\n", w, result.probability,
                  result.error_bound, result.nodes_expanded);
    }
    std::printf(
        "\nExpected: for a target error, path truncation (the thesis's choice) visits\n"
        "fewer nodes than a uniform depth cut, because it spends depth only where\n"
        "path probability warrants it (Qureshi & Sanders' observation in [Qur96]).\n");
  }
  return 0;
}

// Batch-of-N vs N-singletons record for the plan pipeline, written to
// BENCH_plan.json (CWD, or the path given as argv[1]).
//
// Workload: the Table 5.4 formula family P(>0.1)[Sup U[0,t][0,3000] failed]
// on the TMR model, one formula per t = 50..500 step 50. Two lanes:
//
//   singleton — each formula checked like a separate mrmcheck run: fresh
//     ModelChecker, numeric::SharedOmegaCache cleared first (a new process
//     has no warm cache), and both the per-state probabilities and the
//     verdicts requested — which costs the direct front end two until
//     solves per formula (path_probabilities and the verdict bounds are
//     separate cache entries);
//   batch — every formula through ONE compiled plan: the solve runs once
//     per formula and serves probabilities and verdicts both, transforms
//     are hoisted into the shared cache, and the Omega cache stays warm
//     across the batch.
//
// Verdicts and probabilities must agree BITWISE between the lanes (checked
// here; "bitwise_identical" lands in the JSON) — the speedup buys identical
// answers or it does not count. Timings are best-of-g_repeats wall clock
// after one untimed warmup per lane (both lanes clear the shared Omega
// cache inside the timed region, so warmup only stabilises the allocator
// and instruction caches, not the measured cache behaviour).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "checker/sat.hpp"
#include "logic/parser.hpp"
#include "models/tmr.hpp"
#include "numeric/conditional.hpp"
#include "plan/compiler.hpp"
#include "plan/executor.hpp"

namespace {

using namespace csrlmrm;

int g_repeats = 5;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double best_of(Fn&& fn) {
  fn();  // untimed warmup: page in code, size the allocator pools
  double best = 1e300;
  for (int repeat = 0; repeat < g_repeats; ++repeat) {
    const double start = now_ms();
    fn();
    best = best < now_ms() - start ? best : now_ms() - start;
  }
  return best;
}

struct FormulaOutcome {
  std::vector<checker::Verdict> verdicts;
  std::vector<checker::UntilValue> probabilities;
};

bool bitwise_equal(const FormulaOutcome& a, const FormulaOutcome& b) {
  if (a.verdicts != b.verdicts) return false;
  if (a.probabilities.size() != b.probabilities.size()) return false;
  for (std::size_t s = 0; s < a.probabilities.size(); ++s) {
    if (std::memcmp(&a.probabilities[s].probability, &b.probabilities[s].probability,
                    sizeof(double)) != 0 ||
        std::memcmp(&a.probabilities[s].error_bound, &b.probabilities[s].error_bound,
                    sizeof(double)) != 0 ||
        std::memcmp(&a.probabilities[s].bound.lower, &b.probabilities[s].bound.lower,
                    sizeof(double)) != 0 ||
        std::memcmp(&a.probabilities[s].bound.upper, &b.probabilities[s].bound.upper,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_plan.json";
  double t_end = 500.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_repeats = 1;
      t_end = 100.0;  // two formulas: enough to exercise every code path
    } else {
      out_path = argv[i];
    }
  }

  const core::Mrm model = models::make_tmr();
  checker::CheckerOptions options;

  std::vector<logic::FormulaPtr> batch;
  std::vector<std::string> texts;
  for (double t = 50.0; t <= t_end; t += 50.0) {
    char text[96];
    std::snprintf(text, sizeof(text), "P(>0.1)[Sup U[0,%.0f][0,3000] failed]", t);
    texts.emplace_back(text);
    batch.push_back(logic::parse_formula(text));
  }
  const std::size_t n_formulas = batch.size();

  // --- singleton lane -----------------------------------------------------
  std::vector<FormulaOutcome> singleton_results(n_formulas);
  const double singleton_ms = best_of([&] {
    for (std::size_t i = 0; i < n_formulas; ++i) {
      numeric::SharedOmegaCache::global().clear();  // emulate a new process
      checker::ModelChecker direct(model, options);
      singleton_results[i].probabilities = direct.path_probabilities(batch[i]);
      singleton_results[i].verdicts = direct.verdicts(batch[i]);
    }
  });

  // --- batch lane ---------------------------------------------------------
  std::vector<FormulaOutcome> batch_results(n_formulas);
  const double batch_ms = best_of([&] {
    numeric::SharedOmegaCache::global().clear();
    const plan::Plan compiled = plan::compile(model, batch, options);
    const plan::PlanResult result = plan::execute(compiled, model);
    for (std::size_t i = 0; i < n_formulas; ++i) {
      batch_results[i].probabilities = result.formulas[i].probabilities;
      batch_results[i].verdicts = result.formulas[i].verdicts;
    }
  });

  bool identical = true;
  for (std::size_t i = 0; i < n_formulas; ++i) {
    if (!bitwise_equal(singleton_results[i], batch_results[i])) {
      identical = false;
      std::printf("MISMATCH at formula %zu: %s\n", i, texts[i].c_str());
    }
  }

  const double speedup = batch_ms > 0.0 ? singleton_ms / batch_ms : 0.0;
  std::printf("plan batch bench (TMR, %zu formulas, best of %d)\n", n_formulas, g_repeats);
  std::printf("  singletons: %8.3f ms\n  batch:      %8.3f ms\n  speedup:    %.2fx\n",
              singleton_ms, batch_ms, speedup);
  std::printf("  bitwise identical: %s\n", identical ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"plan_batch_vs_singletons\",\n");
  std::fprintf(out, "  \"model\": \"tmr\",\n  \"formula_family\": "
                    "\"P(>0.1)[Sup U[0,t][0,3000] failed]\",\n");
  std::fprintf(out, "  \"t_values\": [");
  for (std::size_t i = 0; i < n_formulas; ++i) {
    std::fprintf(out, "%s%.0f", i == 0 ? "" : ", ", 50.0 * static_cast<double>(i + 1));
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "  \"repeats\": %d,\n", g_repeats);
  std::fprintf(out, "  \"singletons_ms\": %.3f,\n", singleton_ms);
  std::fprintf(out, "  \"batch_ms\": %.3f,\n", batch_ms);
  std::fprintf(out, "  \"speedup\": %.2f,\n", speedup);
  std::fprintf(out, "  \"bitwise_identical\": %s\n}\n", identical ? "true" : "false");
  std::fclose(out);

  return identical ? 0 : 1;
}

// DFPG-vs-classdp engine comparison on the chapter-5 until workloads,
// written to BENCH_until_engines.json (CWD, or the path given as argv[1]).
//
// For each workload the checker-style fan-out (every live non-Psi state of
// the transformed MRM is a start state) is evaluated twice at equal
// truncation probability w:
//
//   dfpg     one depth-first path generation per start state (the thesis
//            appendix's Algorithm 4.7, path_explorer.hpp);
//   classdp  ONE signature-class DP frontier sweep answering every start
//            (class_explorer.hpp, multi-start batching).
//
// Recorded per workload: wall-clock of both engines (best of kRepeats),
// omega.evaluations of both engines (the conditional-probability calls of
// eq. 4.9 — the quantity the signature-class merge and the (k, r') grouping
// are designed to shrink), the classdp frontier/merge counters, the maximum
// cross-engine disagreement in excess of the combined error bounds
// (expected 0: the engines bracket the same exact value), and the maximum
// deviation of classdp results across 1/2/8 worker threads (expected 0:
// the per-level expansion is bitwise deterministic by construction).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "models/tmr.hpp"
#include "obs/stats.hpp"

namespace {

using namespace csrlmrm;

constexpr int kRepeats = 3;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double best_of(Fn&& fn) {
  double best = 1e300;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    const double start = now_ms();
    fn();
    best = std::min(best, now_ms() - start);
  }
  return best;
}

/// Runs `fn` with statistics collection on and returns the named counter.
template <typename Fn>
double counter_of(Fn&& fn, const char* counter) {
  obs::set_stats_enabled(true);
  obs::StatsRegistry::global().reset();
  fn();
  const double value = static_cast<double>(obs::StatsRegistry::global().counter(counter));
  obs::StatsRegistry::global().reset();
  obs::set_stats_enabled(false);
  return value;
}

struct Workload {
  std::string name;
  std::string description;
  core::Mrm model;
  std::string phi;
  std::string psi;
  double t = 0.0;
  double r = 0.0;
  double w = 1e-8;
};

struct Record {
  std::string name;
  std::string description;
  std::size_t num_starts = 0;
  double dfpg_ms = 0.0;
  double classdp_ms = 0.0;
  double omega_dfpg = 0.0;
  double omega_classdp = 0.0;
  double trivial_classdp = 0.0;
  double nodes_dfpg = 0.0;
  double nodes_classdp = 0.0;
  double agreement_excess = 0.0;  // max(|p_d - p_c| - (e_d + e_c), 0) over starts
  double thread_determinism_diff = 0.0;
};

Record run_workload(const Workload& workload) {
  benchsupport::UntilExperiment experiment(workload.model, workload.phi, workload.psi);

  // The P2 fan-out's non-trivial start states: neither absorbed-Psi (exact 1)
  // nor dead (exact 0).
  std::vector<core::StateIndex> starts;
  for (core::StateIndex s = 0; s < workload.model.num_states(); ++s) {
    if (!experiment.psi_mask()[s] && !experiment.dead_mask()[s]) starts.push_back(s);
  }

  Record record;
  record.name = workload.name;
  record.description = workload.description;
  record.num_starts = starts.size();

  const auto run_dfpg = [&] {
    for (const core::StateIndex s : starts) {
      experiment.uniformization(s, workload.t, workload.r, workload.w);
    }
  };
  const auto run_classdp = [&] {
    experiment.classdp_batch(starts, workload.t, workload.r, workload.w);
  };

  record.dfpg_ms = best_of(run_dfpg);
  record.classdp_ms = best_of(run_classdp);
  record.omega_dfpg = counter_of(run_dfpg, "omega.evaluations");
  record.omega_classdp = counter_of(run_classdp, "omega.evaluations");
  record.trivial_classdp = counter_of(run_classdp, "classdp.trivial_folds");
  record.nodes_dfpg = counter_of(run_dfpg, "uniformization.nodes_expanded");
  record.nodes_classdp = counter_of(run_classdp, "classdp.nodes_expanded");

  // Cross-engine agreement: both engines report p with p <= p_exact <=
  // p + error_bound, so the probabilities must agree within the summed
  // bounds.
  std::vector<benchsupport::UntilExperiment::Result> dfpg;
  dfpg.reserve(starts.size());
  for (const core::StateIndex s : starts) {
    dfpg.push_back(experiment.uniformization(s, workload.t, workload.r, workload.w));
  }
  const auto classdp =
      experiment.classdp_batch(starts, workload.t, workload.r, workload.w);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const double gap = std::abs(dfpg[i].probability - classdp[i].probability) -
                       (dfpg[i].error_bound + classdp[i].error_bound);
    record.agreement_excess = std::max(record.agreement_excess, gap);
  }

  // Thread determinism: identical bits at every worker count.
  for (const unsigned threads : {2u, 8u}) {
    const auto other =
        experiment.classdp_batch(starts, workload.t, workload.r, workload.w, threads);
    for (std::size_t i = 0; i < starts.size(); ++i) {
      record.thread_determinism_diff =
          std::max(record.thread_determinism_diff,
                   std::abs(other[i].probability - classdp[i].probability));
      record.thread_determinism_diff =
          std::max(record.thread_determinism_diff,
                   std::abs(other[i].error_bound - classdp[i].error_bound));
    }
  }
  return record;
}

void print_record(std::FILE* out, const Record& record, bool last) {
  std::fprintf(out, "    {\n      \"name\": \"%s\",\n", record.name.c_str());
  std::fprintf(out, "      \"workload\": \"%s\",\n", record.description.c_str());
  std::fprintf(out, "      \"num_starts\": %zu,\n", record.num_starts);
  std::fprintf(out, "      \"dfpg_ms\": %.3f,\n", record.dfpg_ms);
  std::fprintf(out, "      \"classdp_ms\": %.3f,\n", record.classdp_ms);
  std::fprintf(out, "      \"wall_clock_speedup\": %.2f,\n",
               record.dfpg_ms / record.classdp_ms);
  std::fprintf(out, "      \"omega_evaluations_dfpg\": %.0f,\n", record.omega_dfpg);
  std::fprintf(out, "      \"omega_evaluations_classdp\": %.0f,\n", record.omega_classdp);
  // classdp can fold EVERY class through the trivial Omega base cases (zero
  // evaluator calls); JSON has no infinity, so emit null for the ratio then.
  if (record.omega_classdp > 0.0) {
    std::fprintf(out, "      \"omega_evaluation_ratio\": %.2f,\n",
                 record.omega_dfpg / record.omega_classdp);
  } else {
    std::fprintf(out, "      \"omega_evaluation_ratio\": null,\n");
  }
  std::fprintf(out, "      \"classdp_trivial_omega_folds\": %.0f,\n", record.trivial_classdp);
  std::fprintf(out, "      \"dfs_nodes_expanded\": %.0f,\n", record.nodes_dfpg);
  std::fprintf(out, "      \"classdp_frontier_classes\": %.0f,\n", record.nodes_classdp);
  std::fprintf(out, "      \"agreement_excess_over_error_bounds\": %.3e,\n",
               record.agreement_excess);
  std::fprintf(out, "      \"classdp_max_diff_across_1_2_8_threads\": %.3e\n    }%s\n",
               record.thread_determinism_diff, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_until_engines.json";

  std::vector<Workload> workloads;
  workloads.push_back({"table_5_5_nmr",
                       "11-module NMR (Table 5.5 calibration), "
                       "P[tt U[0,100][0,2000] allUp], w=1e-8, all live starts",
                       models::make_tmr(models::chapter5_nmr_config(false)), "TT", "allUp",
                       100.0, 2000.0, 1e-8});
  workloads.push_back({"table_5_7_nmr_variable",
                       "11-module NMR, variable failure rates (Table 5.7), "
                       "P[tt U[0,100][0,2000] allUp], w=1e-8, all live starts",
                       models::make_tmr(models::chapter5_nmr_config(true)), "TT", "allUp",
                       100.0, 2000.0, 1e-8});
  workloads.push_back({"table_5_3_tmr",
                       "3-module TMR (Table 5.3, t=250 row), "
                       "P[Sup U[0,250][0,3000] failed], w=1e-11, all live starts",
                       models::make_tmr(models::TmrConfig{}), "Sup", "failed", 250.0, 3000.0,
                       1e-11});
  workloads.push_back({"table_5_4_tmr_deep",
                       "3-module TMR (Table 5.4, t=500 row at its tightened w), "
                       "P[Sup U[0,500][0,3000] failed], w=1e-13, all live starts",
                       models::make_tmr(models::TmrConfig{}), "Sup", "failed", 500.0, 3000.0,
                       1e-13});

  std::vector<Record> records;
  for (const Workload& workload : workloads) {
    records.push_back(run_workload(workload));
    const Record& record = records.back();
    std::printf(
        "%s: dfpg %.1f ms / classdp %.1f ms (speedup %.2fx), omega evals %.0f -> %.0f "
        "(%.2fx fewer), agreement excess %.1e, thread diff %.1e\n",
        record.name.c_str(), record.dfpg_ms, record.classdp_ms,
        record.dfpg_ms / record.classdp_ms, record.omega_dfpg, record.omega_classdp,
        record.omega_dfpg / record.omega_classdp, record.agreement_excess,
        record.thread_determinism_diff);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_until_engines: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"note\": \"timings are best-of-%d wall clock; dfpg runs one DFS per "
               "start state, classdp answers all starts in one batched frontier sweep at "
               "the same truncation probability w; omega_evaluation_ratio null means "
               "classdp folded every class through the trivial Omega base cases and "
               "needed zero evaluator calls\",\n",
               kRepeats);
  std::fprintf(out, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    print_record(out, records[i], i + 1 == records.size());
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

// DFPG-vs-classdp-vs-auto engine comparison on the chapter-5 until
// workloads, written to BENCH_until_engines.json (CWD, or the path given as
// argv[1]).
//
// For each workload the checker-style fan-out (every live non-Psi state of
// the transformed MRM is a start state) is evaluated three times at equal
// truncation probability w:
//
//   dfpg     one depth-first path generation per start state (the thesis
//            appendix's Algorithm 4.7, path_explorer.hpp);
//   classdp  ONE signature-class DP frontier sweep answering every start
//            (class_explorer.hpp, multi-start batching), no escalation;
//   auto     whatever checker::choose_until_engine picks for the workload —
//            in practice the class DP with the adaptive coarsen/DFS-hand-off
//            hybrid armed, the --until-engine=auto default.
//
// All engine inputs (model construction, formula satisfaction sets, the
// absorbing transform, engine construction with its signature classification)
// are prepared ONCE per workload in the UntilExperiment constructor, outside
// every timed repetition: the best-of loops re-run only the engine queries,
// so timings measure engines, not setup. (The models are built
// programmatically — no file parsing happens anywhere in this binary.)
//
// Recorded per workload: wall-clock of all three lanes (best of g_repeats,
// lanes interleaved within each repetition so host clock drift cancels),
// wall_clock_speedup = best(dfpg, classdp) / auto (the "auto never loses"
// headline), which engine auto picked, omega.evaluations (the
// conditional-probability calls of eq. 4.9 — the quantity the
// signature-class merge and the (k, r') grouping are designed to shrink),
// the classdp frontier/merge/escalation counters, the maximum cross-engine
// disagreement in excess of the combined error bounds (expected 0: the
// engines bracket the same exact value), and the maximum deviation of the
// classdp and auto lanes across 1/2/8 worker threads (expected 0: the
// per-level expansion and the chunked DFS continuation are bitwise
// deterministic by construction).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "checker/until.hpp"
#include "models/tmr.hpp"
#include "obs/stats.hpp"

namespace {

using namespace csrlmrm;

// Best-of repetition count; `--smoke` (the bench-smoke ctest lane) drops it
// to 1 so the binary exercises every lane in well under a second.
int g_repeats = 5;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double time_once(Fn&& fn) {
  const double start = now_ms();
  fn();
  return now_ms() - start;
}

/// Runs `fn` with statistics collection on and returns the named counter.
template <typename Fn>
double counter_of(Fn&& fn, const char* counter) {
  obs::set_stats_enabled(true);
  obs::StatsRegistry::global().reset();
  fn();
  const double value = static_cast<double>(obs::StatsRegistry::global().counter(counter));
  obs::StatsRegistry::global().reset();
  obs::set_stats_enabled(false);
  return value;
}

struct Workload {
  std::string name;
  std::string description;
  core::Mrm model;
  std::string phi;
  std::string psi;
  double t = 0.0;
  double r = 0.0;
  double w = 1e-8;
};

struct Record {
  std::string name;
  std::string description;
  std::size_t num_starts = 0;
  double dfpg_ms = 0.0;
  double classdp_ms = 0.0;
  double auto_ms = 0.0;
  std::string auto_choice;  // what checker::choose_until_engine picked
  double omega_dfpg = 0.0;
  double omega_classdp = 0.0;
  double trivial_classdp = 0.0;
  double nodes_dfpg = 0.0;
  double nodes_classdp = 0.0;
  double coarsenings_auto = 0.0;
  double handoffs_auto = 0.0;
  double agreement_excess = 0.0;  // max(|p_d - p_c| - (e_d + e_c), 0) over starts
  double thread_determinism_diff = 0.0;
};

Record run_workload(const Workload& workload) {
  // All setup (absorbing transform, satisfaction sets, engine construction)
  // happens here, once — the timed lambdas below run only engine queries.
  benchsupport::UntilExperiment experiment(workload.model, workload.phi, workload.psi);

  // The P2 fan-out's non-trivial start states: neither absorbed-Psi (exact 1)
  // nor dead (exact 0).
  std::vector<core::StateIndex> starts;
  for (core::StateIndex s = 0; s < workload.model.num_states(); ++s) {
    if (!experiment.psi_mask()[s] && !experiment.dead_mask()[s]) starts.push_back(s);
  }

  Record record;
  record.name = workload.name;
  record.description = workload.description;
  record.num_starts = starts.size();

  // The checker's --until-engine=auto cost model, resolved for this workload.
  checker::CheckerOptions checker_options;
  checker_options.uniformization.truncation_probability = workload.w;
  const checker::AutoEngineChoice choice =
      checker::choose_until_engine(experiment.transformed_model(), workload.t, checker_options);
  record.auto_choice = choice.method == checker::UntilMethod::kDiscretization
                           ? "discretization"
                       : choice.engine == checker::UntilEngine::kDfpg
                           ? "dfpg"
                           : (choice.adaptive_hybrid ? "classdp+hybrid" : "classdp");

  const auto run_dfpg = [&] {
    for (const core::StateIndex s : starts) {
      experiment.uniformization(s, workload.t, workload.r, workload.w);
    }
  };
  const auto run_classdp = [&] {
    experiment.classdp_batch(starts, workload.t, workload.r, workload.w);
  };
  // The auto lane runs whatever the cost model picked (on these workloads:
  // the class DP with the hybrid escalation armed).
  const auto run_auto = [&] {
    if (choice.method == checker::UntilMethod::kUniformization &&
        choice.engine == checker::UntilEngine::kDfpg) {
      run_dfpg();
    } else {
      experiment.classdp_batch(starts, workload.t, workload.r, workload.w, 0,
                               choice.adaptive_hybrid);
    }
  };

  // Interleaved best-of-g_repeats: each repetition times all three lanes back
  // to back, so slow clock/frequency drift on the host hits every lane equally
  // instead of biasing whichever lane happens to be measured last. (The lanes
  // differ by ~1 ms on the TMR workloads; sequential per-lane loops let drift
  // of that size masquerade as an engine difference.)
  record.dfpg_ms = record.classdp_ms = record.auto_ms = 1e300;
  for (int repeat = 0; repeat < g_repeats; ++repeat) {
    record.dfpg_ms = std::min(record.dfpg_ms, time_once(run_dfpg));
    record.classdp_ms = std::min(record.classdp_ms, time_once(run_classdp));
    record.auto_ms = std::min(record.auto_ms, time_once(run_auto));
  }
  record.omega_dfpg = counter_of(run_dfpg, "omega.evaluations");
  record.omega_classdp = counter_of(run_classdp, "omega.evaluations");
  record.trivial_classdp = counter_of(run_classdp, "classdp.trivial_folds");
  record.nodes_dfpg = counter_of(run_dfpg, "uniformization.nodes_expanded");
  record.nodes_classdp = counter_of(run_classdp, "classdp.nodes_expanded");
  record.coarsenings_auto = counter_of(run_auto, "classdp.coarsenings");
  record.handoffs_auto = counter_of(run_auto, "classdp.hybrid_handoffs");

  // Cross-engine agreement: every engine reports p with p <= p_exact <=
  // p + error_bound, so the probabilities must agree pairwise within the
  // summed bounds — including the hybrid's, whose coarsening/hand-off only
  // reroutes work inside the same accounting.
  std::vector<benchsupport::UntilExperiment::Result> dfpg;
  dfpg.reserve(starts.size());
  for (const core::StateIndex s : starts) {
    dfpg.push_back(experiment.uniformization(s, workload.t, workload.r, workload.w));
  }
  const auto classdp =
      experiment.classdp_batch(starts, workload.t, workload.r, workload.w);
  const auto hybrid =
      experiment.classdp_batch(starts, workload.t, workload.r, workload.w, 0, true);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const double pure_gap = std::abs(dfpg[i].probability - classdp[i].probability) -
                            (dfpg[i].error_bound + classdp[i].error_bound);
    const double hybrid_gap = std::abs(dfpg[i].probability - hybrid[i].probability) -
                              (dfpg[i].error_bound + hybrid[i].error_bound);
    record.agreement_excess =
        std::max(record.agreement_excess, std::max(pure_gap, hybrid_gap));
  }

  // Thread determinism: identical bits at every worker count, for the pure
  // frontier sweep and for the hybrid's chunked DFS continuation alike.
  for (const unsigned threads : {2u, 8u}) {
    const auto other =
        experiment.classdp_batch(starts, workload.t, workload.r, workload.w, threads);
    const auto other_hybrid = experiment.classdp_batch(starts, workload.t, workload.r,
                                                       workload.w, threads, true);
    for (std::size_t i = 0; i < starts.size(); ++i) {
      record.thread_determinism_diff =
          std::max(record.thread_determinism_diff,
                   std::abs(other[i].probability - classdp[i].probability));
      record.thread_determinism_diff =
          std::max(record.thread_determinism_diff,
                   std::abs(other[i].error_bound - classdp[i].error_bound));
      record.thread_determinism_diff =
          std::max(record.thread_determinism_diff,
                   std::abs(other_hybrid[i].probability - hybrid[i].probability));
      record.thread_determinism_diff =
          std::max(record.thread_determinism_diff,
                   std::abs(other_hybrid[i].error_bound - hybrid[i].error_bound));
    }
  }
  return record;
}

void print_record(std::FILE* out, const Record& record, bool last) {
  std::fprintf(out, "    {\n      \"name\": \"%s\",\n", record.name.c_str());
  std::fprintf(out, "      \"workload\": \"%s\",\n", record.description.c_str());
  std::fprintf(out, "      \"num_starts\": %zu,\n", record.num_starts);
  std::fprintf(out, "      \"dfpg_ms\": %.3f,\n", record.dfpg_ms);
  std::fprintf(out, "      \"classdp_ms\": %.3f,\n", record.classdp_ms);
  std::fprintf(out, "      \"auto_ms\": %.3f,\n", record.auto_ms);
  std::fprintf(out, "      \"auto_choice\": \"%s\",\n", record.auto_choice.c_str());
  std::fprintf(out, "      \"wall_clock_speedup\": %.2f,\n",
               std::min(record.dfpg_ms, record.classdp_ms) / record.auto_ms);
  std::fprintf(out, "      \"omega_evaluations_dfpg\": %.0f,\n", record.omega_dfpg);
  std::fprintf(out, "      \"omega_evaluations_classdp\": %.0f,\n", record.omega_classdp);
  // classdp can fold EVERY class through the trivial Omega base cases (zero
  // evaluator calls); JSON has no infinity, so emit null for the ratio then.
  if (record.omega_classdp > 0.0) {
    std::fprintf(out, "      \"omega_evaluation_ratio\": %.2f,\n",
                 record.omega_dfpg / record.omega_classdp);
  } else {
    std::fprintf(out, "      \"omega_evaluation_ratio\": null,\n");
  }
  std::fprintf(out, "      \"classdp_trivial_omega_folds\": %.0f,\n", record.trivial_classdp);
  std::fprintf(out, "      \"dfs_nodes_expanded\": %.0f,\n", record.nodes_dfpg);
  std::fprintf(out, "      \"classdp_frontier_classes\": %.0f,\n", record.nodes_classdp);
  std::fprintf(out, "      \"auto_coarsenings\": %.0f,\n", record.coarsenings_auto);
  std::fprintf(out, "      \"auto_hybrid_handoffs\": %.0f,\n", record.handoffs_auto);
  std::fprintf(out, "      \"agreement_excess_over_error_bounds\": %.3e,\n",
               record.agreement_excess);
  std::fprintf(out, "      \"max_diff_across_1_2_8_threads\": %.3e\n    }%s\n",
               record.thread_determinism_diff, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_until_engines.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  std::vector<Workload> workloads;
  if (smoke) {
    // bench-smoke lane: one tiny TMR query, single repetition — checks every
    // lane (dfpg, classdp, auto, agreement, thread determinism) end to end
    // without meaningful timings.
    g_repeats = 1;
    workloads.push_back({"smoke_tmr",
                         "3-module TMR smoke run, P[Sup U[0,10][0,100] failed], w=1e-6",
                         models::make_tmr(models::TmrConfig{}), "Sup", "failed", 10.0, 100.0,
                         1e-6});
  } else {
    workloads.push_back({"table_5_5_nmr",
                         "11-module NMR (Table 5.5 calibration), "
                         "P[tt U[0,100][0,2000] allUp], w=1e-8, all live starts",
                         models::make_tmr(models::chapter5_nmr_config(false)), "TT", "allUp",
                         100.0, 2000.0, 1e-8});
    workloads.push_back({"table_5_7_nmr_variable",
                         "11-module NMR, variable failure rates (Table 5.7), "
                         "P[tt U[0,100][0,2000] allUp], w=1e-8, all live starts",
                         models::make_tmr(models::chapter5_nmr_config(true)), "TT", "allUp",
                         100.0, 2000.0, 1e-8});
    workloads.push_back({"table_5_3_tmr",
                         "3-module TMR (Table 5.3, t=250 row), "
                         "P[Sup U[0,250][0,3000] failed], w=1e-11, all live starts",
                         models::make_tmr(models::TmrConfig{}), "Sup", "failed", 250.0, 3000.0,
                         1e-11});
    workloads.push_back({"table_5_4_tmr_deep",
                         "3-module TMR (Table 5.4, t=500 row at its tightened w), "
                         "P[Sup U[0,500][0,3000] failed], w=1e-13, all live starts",
                         models::make_tmr(models::TmrConfig{}), "Sup", "failed", 500.0, 3000.0,
                         1e-13});
  }

  std::vector<Record> records;
  for (const Workload& workload : workloads) {
    records.push_back(run_workload(workload));
    const Record& record = records.back();
    std::printf(
        "%s: dfpg %.1f ms / classdp %.1f ms / auto[%s] %.1f ms "
        "(auto speedup vs best %.2fx), omega evals %.0f -> %.0f, "
        "agreement excess %.1e, thread diff %.1e\n",
        record.name.c_str(), record.dfpg_ms, record.classdp_ms, record.auto_choice.c_str(),
        record.auto_ms, std::min(record.dfpg_ms, record.classdp_ms) / record.auto_ms,
        record.omega_dfpg, record.omega_classdp, record.agreement_excess,
        record.thread_determinism_diff);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_until_engines: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"note\": \"timings are best-of-%d wall clock (lanes interleaved per "
               "repetition) over engine queries only "
               "(model build, satisfaction sets, absorbing transform and engine "
               "construction are hoisted out of the timed loops; the models are built "
               "programmatically, no file IO); dfpg runs one DFS per start state, classdp "
               "answers all starts in one batched frontier sweep at the same truncation "
               "probability w, auto runs what checker::choose_until_engine picked "
               "(auto_choice); wall_clock_speedup = best(dfpg_ms, classdp_ms) / auto_ms; "
               "omega_evaluation_ratio null means classdp folded every class through the "
               "trivial Omega base cases and needed zero evaluator calls\",\n",
               g_repeats);
  std::fprintf(out, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    print_record(out, records[i], i + 1 == records.size());
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

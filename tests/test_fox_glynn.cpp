// Fox-Glynn weights against the lgamma-based Poisson pmf.
#include "numeric/fox_glynn.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/poisson.hpp"

namespace csrlmrm::numeric {
namespace {

TEST(FoxGlynn, ZeroMeanIsPointMass) {
  const auto window = fox_glynn(0.0, 1e-10);
  EXPECT_EQ(window.left, 0u);
  EXPECT_EQ(window.right, 0u);
  EXPECT_DOUBLE_EQ(window.probability(0), 1.0);
}

class FoxGlynnMeans : public ::testing::TestWithParam<double> {};

TEST_P(FoxGlynnMeans, WeightsMatchStablePmf) {
  const double mean = GetParam();
  const auto window = fox_glynn(mean, 1e-12);
  for (std::size_t k = window.left; k <= window.right; ++k) {
    const double exact = poisson_pmf(k, mean);
    if (exact < 1e-250) continue;  // below any meaningful comparison
    // lgamma itself carries ~1e-15 per-digit error which scales with k.
    const double tolerance = 1e-11 + 1e-14 * static_cast<double>(k);
    EXPECT_NEAR(window.probability(k - window.left) / exact, 1.0, tolerance)
        << "mean=" << mean << " k=" << k;
  }
}

TEST_P(FoxGlynnMeans, WindowCapturesRequestedMass) {
  const double mean = GetParam();
  const double epsilon = 1e-9;
  const auto window = fox_glynn(mean, epsilon);
  const double below = window.left == 0 ? 0.0 : poisson_cdf(window.left - 1, mean);
  const double inside = poisson_cdf(window.right, mean) - below;
  EXPECT_GE(inside, 1.0 - epsilon) << "mean=" << mean;
}

TEST_P(FoxGlynnMeans, WindowIsNotAbsurdlyWide) {
  const double mean = GetParam();
  const auto window = fox_glynn(mean, 1e-12);
  // O(sqrt(mean) * log(1/eps)) width, with a generous constant.
  const double width = static_cast<double>(window.right - window.left + 1);
  EXPECT_LT(width, 60.0 * std::sqrt(mean + 1.0) + 120.0) << "mean=" << mean;
}

INSTANTIATE_TEST_SUITE_P(Means, FoxGlynnMeans,
                         ::testing::Values(0.05, 0.7, 3.0, 17.5, 32.0, 33.0, 150.0, 2500.0,
                                           40000.0));

TEST(FoxGlynn, HugeMeanStaysFiniteAndNormalized) {
  const auto window = fox_glynn(5e6, 1e-10);
  EXPECT_GT(window.total_weight, 0.0);
  EXPECT_TRUE(std::isfinite(window.total_weight));
  double total = 0.0;
  for (std::size_t i = 0; i < window.weights.size(); ++i) total += window.probability(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The window brackets the mean.
  EXPECT_LT(window.left, 5e6);
  EXPECT_GT(window.right, 5e6);
}

// Extreme means (q*t in 1e4..1e6) are the regime the million-state
// benchmarks drive the window into. Pin the overflow/denormal guards: every
// weight finite and non-negative, the mode weight agreeing with the stable
// pmf, and the window still conserving the requested Poisson mass.
class FoxGlynnExtremeMeans : public ::testing::TestWithParam<double> {};

TEST_P(FoxGlynnExtremeMeans, GuardsKeepWeightsFiniteAndMassConserved) {
  const double mean = GetParam();
  const double epsilon = 1e-12;
  const auto window = fox_glynn(mean, epsilon);
  EXPECT_TRUE(std::isfinite(window.total_weight));
  EXPECT_GT(window.total_weight, 0.0);
  for (std::size_t i = 0; i < window.weights.size(); ++i) {
    const double w = window.weights[i];
    EXPECT_TRUE(std::isfinite(w)) << "mean=" << mean << " offset=" << i;
    EXPECT_GE(w, 0.0) << "mean=" << mean << " offset=" << i;
  }

  const auto mode = static_cast<std::size_t>(mean);
  ASSERT_GE(mode, window.left);
  ASSERT_LE(mode, window.right);
  const double exact_mode = poisson_pmf(mode, mean);
  EXPECT_NEAR(window.probability(mode - window.left) / exact_mode, 1.0, 1e-9)
      << "mean=" << mean;

  // Mass conservation: the normalized weights sum to 1 and the window itself
  // holds at least 1 - epsilon of the true Poisson mass.
  double normalized = 0.0;
  for (std::size_t i = 0; i < window.weights.size(); ++i) {
    normalized += window.probability(i);
  }
  EXPECT_NEAR(normalized, 1.0, 1e-12) << "mean=" << mean;
  const double below = window.left == 0 ? 0.0 : poisson_cdf(window.left - 1, mean);
  const double inside = poisson_cdf(window.right, mean) - below;
  EXPECT_GE(inside, 1.0 - 1e-9) << "mean=" << mean;
}

INSTANTIATE_TEST_SUITE_P(ExtremeMeans, FoxGlynnExtremeMeans,
                         ::testing::Values(1.0e4, 2.5e5, 1.0e6));

TEST(FoxGlynn, TinyEpsilonHitsDenormalGuardNotUnderflow) {
  // With an extreme mean and a very small epsilon the edge recurrences would
  // historically walk into denormals; the guard stops them while keeping the
  // kept weights positive and the mode anchored.
  const auto window = fox_glynn(1.0e6, 1e-300);
  EXPECT_TRUE(std::isfinite(window.total_weight));
  EXPECT_GT(window.total_weight, 0.0);
  const auto mode = static_cast<std::size_t>(1.0e6);
  EXPECT_GT(window.probability(mode - window.left), 0.0);
  for (const double w : window.weights) {
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_GE(w, 0.0);
  }
}

TEST(FoxGlynn, RejectsBadArguments) {
  EXPECT_THROW(fox_glynn(-1.0, 1e-6), std::invalid_argument);
  EXPECT_THROW(fox_glynn(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(fox_glynn(1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::numeric

// Golden-file tests of the plan printer (`mrmcheck --explain`): the textual
// plan for each corpus batch is compared byte-for-byte against a checked-in
// golden under tests/golden_plans/. The format is part of the tool's
// interface — scripts diff --explain output across revisions — so any
// intentional change must regenerate the goldens (set
// CSRLMRM_UPDATE_GOLDEN=1 and rerun this suite) and show up in review.
//
// The corpus mirrors the thesis experiments: the TMR workload behind
// Tables 5.3/5.4 (time- and time-reward-bounded until on the triple modular
// redundant system) and the cellphone model's mixed operator batch.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/model_files.hpp"
#include "logic/parser.hpp"
#include "plan/compiler.hpp"
#include "plan/printer.hpp"

namespace csrlmrm {
namespace {

std::string models_dir() { return CSRLMRM_EXAMPLE_MODELS_DIR; }
std::string golden_dir() { return CSRLMRM_GOLDEN_PLANS_DIR; }

core::Mrm load_example(const std::string& name) {
  const std::string base = models_dir() + "/" + name;
  return io::load_mrm(base + ".tra", base + ".lab", base + ".rewr", base + ".rewi");
}

std::vector<logic::FormulaPtr> parse_batch(const std::vector<std::string>& texts) {
  std::vector<logic::FormulaPtr> batch;
  for (const auto& text : texts) batch.push_back(logic::parse_formula(text));
  return batch;
}

void compare_against_golden(const std::string& golden_name, const std::string& actual) {
  const std::string path = golden_dir() + "/" + golden_name;
  if (std::getenv("CSRLMRM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with CSRLMRM_UPDATE_GOLDEN=1 to create)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual) << "plan text drifted from " << golden_name
                                    << "; if intentional, regenerate with "
                                       "CSRLMRM_UPDATE_GOLDEN=1";
}

void check_corpus(const std::string& model_name, const std::string& golden_name,
                  const std::vector<std::string>& texts) {
  const core::Mrm model = load_example(model_name);
  const auto batch = parse_batch(texts);
  checker::CheckerOptions options;
  const plan::Plan compiled = plan::compile(model, batch, options);
  compare_against_golden(golden_name, plan::print_plan(compiled));
}

// Table 5.4 workload: the same time-reward-bounded until at two thresholds
// (one shared solve, two compares) plus the plain time-bounded variant
// (Table 5.3) which needs its own solve but shares the label sets.
TEST(PlanPrinterGolden, TmrTimeRewardBatch) {
  check_corpus("tmr", "tmr_time_reward.txt",
               {"P(>0.1)[Sup U[0,100][0,3000] failed]",
                "P(>0.5)[Sup U[0,100][0,3000] failed]",
                "P(>0.1)[Sup U[0,100] failed]"});
}

// Unbounded + two-phase + point-interval: one line per until class, so the
// golden pins the class annotations (P0 / P1' / point) and the transform
// shapes next to each other.
TEST(PlanPrinterGolden, TmrUntilClassZoo) {
  check_corpus("tmr", "tmr_until_classes.txt",
               {"P(>0.9)[Sup U failed]", "P(>0.1)[Sup U[10,100] failed]",
                "P(>0.05)[Sup U[100,100][0,3000] failed]"});
}

// Cellphone mixed-operator batch: steady-state, next, until, and all three
// reward queries in one plan — exercises every printed op kind.
TEST(PlanPrinterGolden, CellphoneMixedBatch) {
  check_corpus("cellphone", "cellphone_mixed.txt",
               {"S(>0.5) Doze", "P(>0.8)[X[0,10] Call_Idle]",
                "P(>0.1)[!Off U[0,5][0,20] Call_Initiated]", "R(<=25)[C[0,10]]",
                "R(<100)[F Off]", "R(>=0.1)[S]"});
}

// Nested operators and boolean structure: the inner P becomes its own
// solve+compare feeding the outer until's operand set, and the repeated
// subformula (!Off) dedups to one op.
TEST(PlanPrinterGolden, CellphoneNestedBatch) {
  check_corpus("cellphone", "cellphone_nested.txt",
               {"P(>0.5)[(!Off && P(>0.8)[X[0,10] Call_Idle]) U[0,5] Call_Initiated]",
                "P(>0.1)[!Off U[0,5] Call_Initiated]"});
}

// Printing must be a pure function of the plan: two prints of the same plan
// and prints of two identically-compiled plans are byte-identical.
TEST(PlanPrinter, DeterministicAcrossCompiles) {
  const core::Mrm model = load_example("tmr");
  const auto texts = std::vector<std::string>{"P(>0.1)[Sup U[0,100][0,3000] failed]",
                                              "P(>0.5)[Sup U[0,100][0,3000] failed]"};
  checker::CheckerOptions options;
  const plan::Plan first = plan::compile(model, parse_batch(texts), options);
  const plan::Plan second = plan::compile(model, parse_batch(texts), options);
  EXPECT_EQ(plan::print_plan(first), plan::print_plan(first));
  EXPECT_EQ(plan::print_plan(first), plan::print_plan(second));
}

}  // namespace
}  // namespace csrlmrm

// Uniformization (Definition 4.2), pinned to the worked Example 4.2 matrix.
#include "core/uniformized.hpp"

#include <gtest/gtest.h>

#include "models/wavelan.hpp"

namespace csrlmrm::core {
namespace {

TEST(Uniformized, LambdaIsMaxExitRate) {
  const Mrm model = models::make_wavelan();
  const UniformizedMrm uniformized(model);
  EXPECT_DOUBLE_EQ(uniformized.lambda(), 15.0);  // Example 4.2
}

TEST(Uniformized, MatchesExample42Matrix) {
  const Mrm model = models::make_wavelan();
  const UniformizedMrm u(model);
  // Thesis Example 4.2 (0-based states off, sleep, idle, receive, transmit).
  EXPECT_NEAR(u.probability(0, 0), 149.0 / 150.0, 1e-12);
  EXPECT_NEAR(u.probability(0, 1), 1.0 / 150.0, 1e-12);
  EXPECT_NEAR(u.probability(1, 0), 5.0 / 1500.0, 1e-12);
  EXPECT_NEAR(u.probability(1, 1), 995.0 / 1500.0, 1e-12);
  EXPECT_NEAR(u.probability(1, 2), 500.0 / 1500.0, 1e-12);
  EXPECT_NEAR(u.probability(2, 1), 1200.0 / 1500.0, 1e-12);
  EXPECT_NEAR(u.probability(2, 2), 75.0 / 1500.0, 1e-12);
  EXPECT_NEAR(u.probability(2, 3), 150.0 / 1500.0, 1e-12);
  EXPECT_NEAR(u.probability(2, 4), 75.0 / 1500.0, 1e-12);
  EXPECT_NEAR(u.probability(3, 2), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(u.probability(3, 3), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(u.probability(4, 2), 1.0, 1e-12);
  EXPECT_NEAR(u.probability(4, 4), 0.0, 1e-12);
}

TEST(Uniformized, RowsAreStochastic) {
  const Mrm model = models::make_wavelan();
  const UniformizedMrm u(model);
  for (StateIndex s = 0; s < u.num_states(); ++s) {
    EXPECT_NEAR(u.transition_matrix().row_sum(s), 1.0, 1e-12) << "state " << s;
  }
}

TEST(Uniformized, FactorScalesLambdaAndSelfLoops) {
  const Mrm model = models::make_wavelan();
  const UniformizedMrm u(model, 2.0);
  EXPECT_DOUBLE_EQ(u.lambda(), 30.0);
  // The fastest state now has self-loop probability 1 - 15/30 = 0.5.
  EXPECT_NEAR(u.probability(models::kWavelanTransmit, models::kWavelanTransmit), 0.5, 1e-12);
  for (StateIndex s = 0; s < u.num_states(); ++s) {
    EXPECT_NEAR(u.transition_matrix().row_sum(s), 1.0, 1e-12);
  }
}

TEST(Uniformized, RejectsFactorBelowOne) {
  const Mrm model = models::make_wavelan();
  EXPECT_THROW(UniformizedMrm(model, 0.5), std::invalid_argument);
}

TEST(Uniformized, AbsorbingStateBecomesSelfLoop) {
  RateMatrixBuilder rates(2);
  rates.add(0, 1, 2.0);
  const Mrm model(Ctmc(rates.build(), Labeling(2)), {0.0, 0.0});
  const UniformizedMrm u(model);
  EXPECT_DOUBLE_EQ(u.probability(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(u.probability(0, 1), 1.0);
}

TEST(Uniformized, AllAbsorbingModelGetsUnitLambda) {
  const Mrm model(Ctmc(RateMatrixBuilder(2).build(), Labeling(2)), {1.0, 2.0});
  const UniformizedMrm u(model);
  EXPECT_DOUBLE_EQ(u.lambda(), 1.0);
  EXPECT_DOUBLE_EQ(u.probability(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(u.probability(1, 1), 1.0);
}

TEST(Uniformized, CtmcSelfLoopFoldsIntoSelfProbability) {
  RateMatrixBuilder rates(2);
  rates.add(0, 0, 1.0);
  rates.add(0, 1, 1.0);
  rates.add(1, 0, 4.0);
  const Mrm model(Ctmc(rates.build(), Labeling(2)), {0.0, 0.0});
  const UniformizedMrm u(model);
  EXPECT_DOUBLE_EQ(u.lambda(), 4.0);
  // P(0,0) = 1 - E(0)/Lambda + R(0,0)/Lambda = 1 - 2/4 + 1/4 = 3/4.
  EXPECT_NEAR(u.probability(0, 0), 0.75, 1e-12);
  EXPECT_NEAR(u.probability(0, 1), 0.25, 1e-12);
}

}  // namespace
}  // namespace csrlmrm::core

// Bitwise cross-validation of the blocked SELL-C SpMV (linalg/blocked_csr.hpp)
// against the reference CSR gather — the contract the header promises: the
// blocked kernel accumulates each row's products in the same scalar order as
// CsrMatrix::multiply_into, so the two agree bit for bit on every element at
// every thread count. Matrices are uniformized transition matrices of seeded
// random impulse-reward MRMs (the exact distribution the uniformization
// series feeds the kernel), plus shape edge cases around the chunk height.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/approx.hpp"
#include "linalg/blocked_csr.hpp"
#include "linalg/csr_matrix.hpp"
#include "models/random_mrm.hpp"
#include "numeric/transient.hpp"

namespace csrlmrm {
namespace {

/// Deterministic pseudo-random vector in (0, 1): a 64-bit LCG mapped onto
/// the double mantissa, so inputs are reproducible without <random>.
std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> x(n, 0.0);
  std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    x[i] = static_cast<double>(state >> 11) * 0x1.0p-53 + 0x1.0p-60;
  }
  return x;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

void expect_blocked_matches(const linalg::CsrMatrix& matrix, std::uint64_t seed) {
  const linalg::BlockedCsrMatrix blocked(matrix);
  EXPECT_EQ(blocked.rows(), matrix.rows());
  EXPECT_EQ(blocked.cols(), matrix.cols());
  EXPECT_EQ(blocked.non_zeros(), matrix.non_zeros());

  const std::vector<double> x = random_vector(matrix.cols(), seed);
  std::vector<double> reference(matrix.rows(), 0.0);
  matrix.multiply_into(x, reference, 1);
  for (const unsigned threads : {1u, 2u, 8u}) {
    std::vector<double> y(matrix.rows(), -1.0);
    blocked.multiply_into(x, y, threads);
    EXPECT_TRUE(bitwise_equal(y, reference))
        << matrix.rows() << "x" << matrix.cols() << " at " << threads << " threads";
  }
}

TEST(BlockedSpmv, BitwiseEqualsCsrGatherOnFiftyRandomMrms) {
  for (std::uint32_t seed = 0; seed < 50; ++seed) {
    models::RandomMrmConfig config;
    config.num_states = 8 + (seed % 40);  // spans partial and multiple chunks
    const core::Mrm model = models::make_random_mrm(seed, config);
    double lambda = 0.0;
    const linalg::CsrMatrix p =
        numeric::uniformized_transition_matrix(model.rates(), lambda);
    expect_blocked_matches(p, seed + 1);
    // The transposed matrix is what the forward series actually repacks.
    expect_blocked_matches(p.transposed(), seed + 101);
  }
}

TEST(BlockedSpmv, HandlesShapeEdgeCases) {
  // One row (a single partial chunk), empty rows (absorbing states), a row
  // count exactly at the chunk height, and one past it.
  {
    linalg::CsrBuilder builder(1, 3);
    builder.add(0, 0, 0.25);
    builder.add(0, 2, 0.75);
    expect_blocked_matches(builder.build(), 7);
  }
  {
    linalg::CsrBuilder builder(5, 5);
    builder.add(0, 4, 1.0);
    builder.add(3, 1, 0.5);  // rows 1, 2, 4 stay empty
    expect_blocked_matches(builder.build(), 8);
  }
  const std::size_t chunk = linalg::BlockedCsrMatrix::kChunkRows;
  for (const std::size_t rows : {chunk, chunk + 1, 3 * chunk - 1}) {
    linalg::CsrBuilder builder(rows, rows);
    for (std::size_t r = 0; r < rows; ++r) {
      builder.add(r, r, 1.0 + static_cast<double>(r));
      builder.add(r, (r + 1) % rows, 0.5);
    }
    expect_blocked_matches(builder.build(), rows);
  }
}

TEST(BlockedSpmv, EmptyAndErrorCases) {
  const linalg::CsrMatrix empty(0, 0, {0}, {});
  const linalg::BlockedCsrMatrix blocked(empty);
  std::vector<double> x;
  std::vector<double> y;
  blocked.multiply_into(x, y, 4);  // no rows: a no-op, not a crash
  EXPECT_TRUE(y.empty());

  linalg::CsrBuilder builder(2, 2);
  builder.add(0, 1, 1.0);
  const linalg::BlockedCsrMatrix small(builder.build());
  std::vector<double> bad(3, 0.0);
  std::vector<double> out(2, 0.0);
  EXPECT_THROW(small.multiply_into(bad, out, 1), std::invalid_argument);
  std::vector<double> in(2, 0.0);
  EXPECT_THROW(small.multiply_into(in, in, 1), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm

#include "logic/interval.hpp"

#include <gtest/gtest.h>

namespace csrlmrm::logic {
namespace {

TEST(Interval, DefaultIsTrivial) {
  const Interval i;
  EXPECT_TRUE(i.is_trivial());
  EXPECT_TRUE(i.is_upper_unbounded());
  EXPECT_DOUBLE_EQ(i.lower(), 0.0);
  EXPECT_TRUE(i.contains(0.0));
  EXPECT_TRUE(i.contains(1e100));
}

TEST(Interval, ContainsIsClosedOnBothEnds) {
  const Interval i(1.0, 2.0);
  EXPECT_TRUE(i.contains(1.0));
  EXPECT_TRUE(i.contains(2.0));
  EXPECT_TRUE(i.contains(1.5));
  EXPECT_FALSE(i.contains(0.999));
  EXPECT_FALSE(i.contains(2.001));
}

TEST(Interval, PointIntervalDetected) {
  EXPECT_TRUE(Interval(3.0, 3.0).is_point());
  EXPECT_FALSE(Interval(3.0, 4.0).is_point());
}

TEST(Interval, UpToMakesZeroBasedInterval) {
  const Interval i = up_to(5.0);
  EXPECT_DOUBLE_EQ(i.lower(), 0.0);
  EXPECT_DOUBLE_EQ(i.upper(), 5.0);
  EXPECT_FALSE(i.is_trivial());
}

TEST(Interval, InfiniteUpperBoundAllowed) {
  const Interval i(2.0, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(i.is_upper_unbounded());
  EXPECT_FALSE(i.is_trivial());  // lower is non-zero
  EXPECT_TRUE(i.contains(1e300));
}

TEST(Interval, RejectsInvalidBounds) {
  EXPECT_THROW(Interval(-1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(Interval(3.0, 2.0), std::invalid_argument);
  EXPECT_THROW(Interval(std::numeric_limits<double>::infinity(), 1.0), std::invalid_argument);
  EXPECT_THROW(Interval(std::numeric_limits<double>::quiet_NaN(), 1.0), std::invalid_argument);
  EXPECT_THROW(Interval(0.0, std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
}

TEST(Interval, ToStringUsesTildeForInfinity) {
  EXPECT_EQ(Interval(0.0, 3.0).to_string(), "[0,3]");
  EXPECT_EQ(Interval{}.to_string(), "[0,~]");
}

TEST(Interval, EqualityIsStructural) {
  EXPECT_EQ(Interval(1.0, 2.0), Interval(1.0, 2.0));
  EXPECT_NE(Interval(1.0, 2.0), Interval(1.0, 3.0));
  EXPECT_EQ(Interval{}, full_interval());
}

}  // namespace
}  // namespace csrlmrm::logic

// Differential test of the plan pipeline against the direct checker: for
// random MRMs and random formula batches, compile+execute must reproduce the
// direct ModelChecker's verdicts, value enclosures, and path probabilities
// BITWISE — both front ends call the same checker/operator_eval.hpp
// functions, and this suite is the proof that the plan passes (CSE, transform
// hoisting, engine pinning) never change a single bit of output. Exercised at
// 1/2/8 worker threads (plan and direct always compared at the SAME count).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "checker/sat.hpp"
#include "logic/printer.hpp"
#include "models/random_formula.hpp"
#include "models/random_mrm.hpp"
#include "plan/compiler.hpp"
#include "plan/executor.hpp"

namespace csrlmrm {
namespace {

models::RandomMrmConfig calm_model() {
  models::RandomMrmConfig config;
  config.num_states = 5;
  config.max_rate = 0.8;  // keeps Lambda * t small for until formulas
  return config;
}

/// A batch of three structurally diverse formulas for one seed. Offsets are
/// co-prime-ish so batches mix operator kinds; reusing seed-derived offsets
/// keeps everything reproducible.
std::vector<logic::FormulaPtr> make_batch(std::uint32_t seed) {
  return {models::make_random_formula(seed),
          models::make_random_formula(seed * 3 + 500),
          models::make_random_formula(seed * 7 + 900)};
}

void expect_bitwise_equal(const checker::ProbabilityBound& direct,
                          const checker::ProbabilityBound& planned, std::size_t state) {
  EXPECT_EQ(direct.lower, planned.lower) << "state " << state;
  EXPECT_EQ(direct.upper, planned.upper) << "state " << state;
}

class PlanDifferentialSuite : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PlanDifferentialSuite, BatchMatchesDirectCheckerBitwiseAtEveryThreadCount) {
  const std::uint32_t seed = GetParam();
  const core::Mrm model = models::make_random_mrm(seed * 11 + 2, calm_model());
  const std::vector<logic::FormulaPtr> batch = make_batch(seed);

  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-9;
  const plan::Plan compiled = plan::compile(model, batch, options);

  for (const unsigned threads : {1u, 2u, 8u}) {
    plan::ExecutionOptions exec;
    exec.threads = threads;
    const plan::PlanResult planned = plan::execute(compiled, model, exec);

    checker::CheckerOptions direct_options = options;
    direct_options.threads = threads;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " formula[" + std::to_string(i) +
                   "]=" + logic::to_string(batch[i]));
      // A fresh checker per formula, like the single-formula CLI lane.
      checker::ModelChecker direct(model, direct_options);
      const auto verdicts = direct.verdicts(batch[i]);
      ASSERT_EQ(verdicts.size(), planned.formulas[i].verdicts.size());
      for (std::size_t s = 0; s < verdicts.size(); ++s) {
        EXPECT_EQ(verdicts[s], planned.formulas[i].verdicts[s]) << "state " << s;
      }

      const logic::FormulaKind kind = batch[i]->kind;
      const bool is_operator = kind == logic::FormulaKind::kSteady ||
                               kind == logic::FormulaKind::kProbNext ||
                               kind == logic::FormulaKind::kProbUntil ||
                               kind == logic::FormulaKind::kExpectedReward;
      if (is_operator) {
        ASSERT_TRUE(planned.formulas[i].has_bounds);
        const auto bounds = direct.value_bounds(batch[i]);
        ASSERT_EQ(bounds.size(), planned.formulas[i].bounds.size());
        for (std::size_t s = 0; s < bounds.size(); ++s) {
          expect_bitwise_equal(bounds[s], planned.formulas[i].bounds[s], s);
        }
      }
      if (kind == logic::FormulaKind::kProbUntil || kind == logic::FormulaKind::kProbNext) {
        ASSERT_TRUE(planned.formulas[i].has_probabilities);
        const auto values = direct.path_probabilities(batch[i]);
        ASSERT_EQ(values.size(), planned.formulas[i].probabilities.size());
        for (std::size_t s = 0; s < values.size(); ++s) {
          const auto& planned_value = planned.formulas[i].probabilities[s];
          EXPECT_EQ(values[s].probability, planned_value.probability) << "state " << s;
          EXPECT_EQ(values[s].error_bound, planned_value.error_bound) << "state " << s;
          expect_bitwise_equal(values[s].bound, planned_value.bound, s);
        }
      }
    }
  }
}

TEST_P(PlanDifferentialSuite, PassesOffStillMatchesDirectChecker) {
  // Every pass disabled: the naive one-op-per-occurrence plan must also be
  // bitwise-faithful (isolates the shared operator_eval layer from the
  // passes; a mismatch HERE would point at lowering itself).
  const std::uint32_t seed = GetParam();
  if (seed % 10 != 3) GTEST_SKIP() << "pass-off lane sampled at 1 in 10 seeds";
  const core::Mrm model = models::make_random_mrm(seed * 11 + 2, calm_model());
  const std::vector<logic::FormulaPtr> batch = make_batch(seed);

  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-9;
  plan::PlanOptions passes_off;
  passes_off.cse = false;
  passes_off.hoist_transforms = false;
  passes_off.engine_selection = false;
  const plan::Plan compiled = plan::compile(model, batch, options, passes_off);
  const plan::PlanResult planned = plan::execute(compiled, model);

  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(logic::to_string(batch[i]));
    checker::ModelChecker direct(model, options);
    const auto verdicts = direct.verdicts(batch[i]);
    for (std::size_t s = 0; s < verdicts.size(); ++s) {
      EXPECT_EQ(verdicts[s], planned.formulas[i].verdicts[s]) << "state " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanDifferentialSuite, ::testing::Range(1u, 101u));

}  // namespace
}  // namespace csrlmrm

// Steady-state operator machinery (sections 3.7/4.2), pinned to the worked
// Example 3.5 of the thesis.
#include "checker/steady.hpp"

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "models/wavelan.hpp"

namespace csrlmrm::checker {
namespace {

/// The CTMC of Figure 3.2 (0-based: s1..s5 -> 0..4). Rates chosen to yield
/// the jump probabilities of Example 3.5: P(s1,DiamondB1) = 4/7 and
/// pi^B1(s4) = 2/3.
core::Mrm example_35() {
  core::RateMatrixBuilder rates(5);
  rates.add(0, 1, 2.0);  // s1 -> s2
  rates.add(0, 4, 1.0);  // s1 -> s5
  rates.add(1, 0, 1.0);  // s2 -> s1
  rates.add(1, 2, 2.0);  // s2 -> s3
  rates.add(2, 3, 2.0);  // s3 -> s4
  rates.add(3, 2, 1.0);  // s4 -> s3
  core::Labeling labels(5);
  labels.add(3, "b");
  return core::Mrm(core::Ctmc(rates.build(), std::move(labels)), std::vector<double>(5, 0.0));
}

TEST(Steady, Example35TargetProbabilityIsEightTwentyFirsts) {
  const core::Mrm model = example_35();
  const auto pi = steady_state_probability_of_set(model, model.labels().states_with("b"));
  EXPECT_NEAR(pi[0], 8.0 / 21.0, 1e-9);  // s1 (thesis: 8/21, so s1 |= S_{>=0.3}(b))
}

TEST(Steady, Example35DistributionFromS1) {
  const core::Mrm model = example_35();
  const auto pi = steady_state_distribution(model, 0);
  // Reaches B1 = {s3,s4} with probability 4/7 (split 1/3 : 2/3) and the
  // absorbing s5 with probability 3/7.
  EXPECT_NEAR(pi[2], 4.0 / 7.0 * 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(pi[3], 4.0 / 7.0 * 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(pi[4], 3.0 / 7.0, 1e-9);
  EXPECT_NEAR(pi[0], 0.0, 1e-12);  // transient states vanish in the long run
  EXPECT_NEAR(pi[1], 0.0, 1e-12);
  EXPECT_TRUE(linalg::is_distribution(pi, 1e-9));
}

TEST(Steady, DistributionFromInsideABsccStaysThere) {
  const core::Mrm model = example_35();
  const auto pi = steady_state_distribution(model, 2);  // s3 in B1
  EXPECT_NEAR(pi[2], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(pi[3], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(pi[4], 0.0, 1e-12);
}

TEST(Steady, StronglyConnectedModelIgnoresStartState) {
  const core::Mrm model = models::make_wavelan();
  const auto from0 = steady_state_distribution(model, 0);
  const auto from3 = steady_state_distribution(model, 3);
  for (std::size_t s = 0; s < 5; ++s) EXPECT_NEAR(from0[s], from3[s], 1e-9);
  EXPECT_TRUE(linalg::is_distribution(from0, 1e-9));
}

TEST(Steady, WavelanStationarityBalanceHolds) {
  // pi Q = 0: verify the returned vector satisfies global balance.
  const core::Mrm model = models::make_wavelan();
  const auto pi = steady_state_distribution(model, 0);
  const auto flow = model.rates().generator().left_multiply(pi);
  for (std::size_t s = 0; s < 5; ++s) EXPECT_NEAR(flow[s], 0.0, 1e-9) << "state " << s;
}

TEST(Steady, SetProbabilityIsSumOverStates) {
  const core::Mrm model = models::make_wavelan();
  const auto pi = steady_state_distribution(model, 0);
  const auto busy = steady_state_probability_of_set(model, model.labels().states_with("busy"));
  EXPECT_NEAR(busy[0], pi[3] + pi[4], 1e-9);
}

TEST(Steady, FullSetHasProbabilityOne) {
  const core::Mrm model = example_35();
  const auto pi = steady_state_probability_of_set(model, std::vector<bool>(5, true));
  for (std::size_t s = 0; s < 5; ++s) EXPECT_NEAR(pi[s], 1.0, 1e-9);
}

TEST(Steady, EmptySetHasProbabilityZero) {
  const core::Mrm model = example_35();
  const auto pi = steady_state_probability_of_set(model, std::vector<bool>(5, false));
  for (std::size_t s = 0; s < 5; ++s) EXPECT_DOUBLE_EQ(pi[s], 0.0);
}

TEST(Steady, AbsorbingStateIsItsOwnLongRun) {
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)), {0.0, 0.0});
  const auto pi = steady_state_distribution(model, 0);
  EXPECT_NEAR(pi[0], 0.0, 1e-12);
  EXPECT_NEAR(pi[1], 1.0, 1e-12);
}

TEST(Steady, RejectsBadArguments) {
  const core::Mrm model = example_35();
  EXPECT_THROW(steady_state_probability_of_set(model, std::vector<bool>(3, true)),
               std::invalid_argument);
  EXPECT_THROW(steady_state_distribution(model, 99), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::checker

// General time-interval until Phi U^[t1,t2] Psi (the [Bai03] two-phase
// reduction) against closed forms and the Monte Carlo simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "checker/until.hpp"
#include "models/wavelan.hpp"
#include "sim/simulator.hpp"

namespace csrlmrm::checker {
namespace {

using logic::Interval;

std::vector<bool> mask(std::size_t n, std::initializer_list<int> members) {
  std::vector<bool> m(n, false);
  for (int i : members) m[static_cast<std::size_t>(i)] = true;
  return m;
}

TEST(IntervalUntil, AbsorbingTargetCountsAnyArrivalBeforeT2) {
  // 0 -> 1 (absorbing, Psi) at rate mu, Phi = everything: a jump at any
  // T <= t2 leaves the chain in Psi throughout [t1, t2], so
  // P = 1 - e^{-mu t2} independently of t1.
  const double mu = 0.8;
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, mu);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)),
                        std::vector<double>(2, 0.0));
  const auto values = until_probabilities(model, std::vector<bool>(2, true), mask(2, {1}),
                                          Interval(1.0, 2.5), Interval{});
  EXPECT_NEAR(values[0].probability, 1.0 - std::exp(-mu * 2.5), 1e-9);
  EXPECT_NEAR(values[1].probability, 1.0, 1e-9);  // starts in Psi
}

TEST(IntervalUntil, NonPhiTargetRequiresArrivalInsideTheWindow) {
  // Same chain but Phi = {0} only: the witness must be the arrival instant,
  // so P = Pr{T in [t1,t2]} = e^{-mu t1} - e^{-mu t2}.
  const double mu = 1.3;
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, mu);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)),
                        std::vector<double>(2, 0.0));
  const double t1 = 0.5;
  const double t2 = 1.5;
  const auto values =
      until_probabilities(model, mask(2, {0}), mask(2, {1}), Interval(t1, t2), Interval{});
  EXPECT_NEAR(values[0].probability, std::exp(-mu * t1) - std::exp(-mu * t2), 1e-9);
  // A Psi-but-not-Phi start can never be witnessed at a positive t1.
  EXPECT_NEAR(values[1].probability, 0.0, 1e-12);
}

TEST(IntervalUntil, PointIntervalIsTransientOccupancyOfPhiPsiStates) {
  // Symmetric two-state cycle, Psi = {1}, Phi = everything:
  // P(0, tt U^[t,t] {1}) = p1(t) = (1 - e^{-2t})/2.
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  rates.add(1, 0, 1.0);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)),
                        std::vector<double>(2, 0.0));
  const double t = 1.2;
  const auto values = until_probabilities(model, std::vector<bool>(2, true), mask(2, {1}),
                                          Interval(t, t), Interval{});
  EXPECT_NEAR(values[0].probability, (1.0 - std::exp(-2.0 * t)) / 2.0, 1e-9);
}

TEST(IntervalUntil, CollapsesToZeroBasedWhenT1IsZero) {
  const core::Mrm model = models::make_wavelan();
  const auto idle = model.labels().states_with("idle");
  const auto busy = model.labels().states_with("busy");
  const auto a = until_probabilities(model, idle, busy, Interval(0.0, 1.0), Interval{});
  const auto b = until_probabilities(model, idle, busy, logic::up_to(1.0), Interval{});
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(a[s].probability, b[s].probability, 1e-12);
  }
}

TEST(IntervalUntil, AgreesWithSimulationOnWavelan) {
  const core::Mrm model = models::make_wavelan();
  const std::vector<bool> all(5, true);
  const auto busy = model.labels().states_with("busy");
  const Interval window(0.3, 1.0);
  const auto exact = until_probabilities(model, all, busy, window, Interval{});
  const auto estimate = sim::estimate_until(model, models::kWavelanOff, all, busy, window,
                                            Interval{}, {200000, 91});
  EXPECT_NEAR(exact[models::kWavelanOff].probability, estimate.mean,
              3.0 * estimate.half_width_95 / 1.96);
}

TEST(IntervalUntil, PhiConstraintAppliesDuringPhaseOne) {
  // 0 -> 1 -> 2 chain, Phi = {0, 2}, Psi = {2}: passing through the !Phi
  // state 1 kills the prefix, so the probability is 0 even though 2 is
  // reachable well inside the window.
  core::RateMatrixBuilder rates(3);
  rates.add(0, 1, 5.0);
  rates.add(1, 2, 5.0);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(3)),
                        std::vector<double>(3, 0.0));
  const auto values =
      until_probabilities(model, mask(3, {0, 2}), mask(3, {2}), Interval(1.0, 4.0), Interval{});
  EXPECT_NEAR(values[0].probability, 0.0, 1e-12);
}

TEST(IntervalUntil, WindowMonotoneInT2) {
  const core::Mrm model = models::make_wavelan();
  const std::vector<bool> all(5, true);
  const auto busy = model.labels().states_with("busy");
  double prev = -1.0;
  for (double t2 : {0.4, 0.8, 1.6, 3.2}) {
    const auto values =
        until_probabilities(model, all, busy, Interval(0.3, t2), Interval{});
    EXPECT_GE(values[models::kWavelanOff].probability, prev - 1e-9) << "t2=" << t2;
    prev = values[models::kWavelanOff].probability;
  }
}

TEST(IntervalUntil, RewardBoundedIntervalStillUnsupported) {
  const core::Mrm model = models::make_wavelan();
  const std::vector<bool> all(5, true);
  EXPECT_THROW(until_probabilities(model, all, all, Interval(1.0, 2.0), logic::up_to(5.0)),
               UnsupportedFormulaError);
}

}  // namespace
}  // namespace csrlmrm::checker

// The mrmcheckd subsystem: protocol round trips, the resident-model
// registry, the batching check service (including its admission-control
// degradation paths), the socket server, and the concurrent soak test
// pinning daemon results bitwise-identical to cold direct checks.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/approx.hpp"
#include "daemon/client.hpp"
#include "io/model_files.hpp"
#include "daemon/model_registry.hpp"
#include "daemon/protocol.hpp"
#include "daemon/server.hpp"
#include "daemon/service.hpp"
#include "logic/parser.hpp"
#include "models/cellphone.hpp"
#include "models/mm1k.hpp"
#include "models/tmr.hpp"
#include "plan/compiler.hpp"
#include "plan/executor.hpp"

namespace {

using namespace csrlmrm;

// ---------------------------------------------------------------- protocol

TEST(DaemonProtocol, CheckRequestRoundTrips) {
  daemon::CheckRequest request;
  request.model = "tmr";
  request.formulas = {"P(>0.1)[Sup U[0,10][0,300] failed]", "S(<0.9) allUp"};
  request.options.w = 1e-6;
  request.options.max_nodes = 1000;
  request.options.deadline_ms = 250.0;
  request.options.until_engine = "classdp";
  request.options.fallback = "widen-w";

  const daemon::CheckRequest back =
      daemon::check_request_from_json(daemon::check_request_to_json(request));
  EXPECT_EQ(back.model, request.model);
  EXPECT_EQ(back.formulas, request.formulas);
  ASSERT_TRUE(back.options.w.has_value());
  EXPECT_TRUE(core::exactly_equal(*back.options.w, 1e-6));
  EXPECT_EQ(back.options.max_nodes, request.options.max_nodes);
  EXPECT_EQ(back.options.until_engine, request.options.until_engine);
  EXPECT_EQ(back.options.fallback, request.options.fallback);
}

TEST(DaemonProtocol, CheckReplyRoundTripsBitwise) {
  daemon::CheckReply reply;
  reply.ok = true;
  reply.batch_requests = 3;
  daemon::FormulaReply formula;
  formula.ok = true;
  formula.formula = "P(> 0.1) [a U b]";
  formula.verdicts = "YN?";
  formula.has_probabilities = true;
  formula.probabilities = {0.010198025684297257, 1.0 / 3.0, 1.0};
  formula.has_bounds = true;
  formula.bound_lower = {0.0, 0.3, 1.0};
  formula.bound_upper = {0.25, 0.5, 1.0};
  reply.formulas.push_back(formula);
  reply.stats_delta.counters["daemon.requests"] = 7;
  reply.batch_error = "execute: unsupported bound shape in shared plan";

  // Through the actual wire representation: compact JSON text and back.
  const std::string line = daemon::frame(daemon::check_reply_to_json(reply));
  const daemon::CheckReply back = daemon::check_reply_from_json(obs::parse_json(line));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.batch_requests, 3u);
  ASSERT_EQ(back.formulas.size(), 1u);
  EXPECT_EQ(back.formulas[0].verdicts, "YN?");
  ASSERT_EQ(back.formulas[0].probabilities.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    // %.17g framing must round-trip doubles bitwise.
    EXPECT_TRUE(core::exactly_equal(back.formulas[0].probabilities[i],
                                    formula.probabilities[i]));
  }
  EXPECT_EQ(back.stats_delta.counters.at("daemon.requests"), 7u);
  EXPECT_EQ(back.batch_error, reply.batch_error);
}

TEST(DaemonProtocol, BatchErrorIsOmittedWhenEmpty) {
  // The happy path (no poisoned shared execution) must not grow the wire
  // format: batch_error only appears in the JSON when non-empty.
  daemon::CheckReply reply;
  reply.ok = true;
  const obs::JsonValue encoded = daemon::check_reply_to_json(reply);
  EXPECT_EQ(encoded.find("batch_error"), nullptr);
  const daemon::CheckReply back = daemon::check_reply_from_json(encoded);
  EXPECT_TRUE(back.batch_error.empty());
}

TEST(DaemonProtocol, ApplyOverridesRejectsBadNames) {
  checker::CheckerOptions base;
  daemon::CheckOverrides overrides;
  overrides.until_engine = "warp-drive";
  EXPECT_THROW(daemon::apply_overrides(base, overrides), std::invalid_argument);
  overrides.until_engine.reset();
  overrides.fallback = "ignore";
  EXPECT_THROW(daemon::apply_overrides(base, overrides), std::invalid_argument);
  overrides.fallback.reset();
  overrides.w = -1.0;
  EXPECT_THROW(daemon::apply_overrides(base, overrides), std::invalid_argument);
}

TEST(DaemonProtocol, BatchKeySeparatesNumericOptionsOnly) {
  daemon::CheckRequest a;
  a.model = "tmr";
  daemon::CheckRequest b = a;
  // Deadline is admission control, never numeric: same key.
  b.options.deadline_ms = 5.0;
  EXPECT_EQ(daemon::batch_key(a), daemon::batch_key(b));
  b.options.w = 1e-6;
  EXPECT_NE(daemon::batch_key(a), daemon::batch_key(b));
}

// ---------------------------------------------------------------- registry

TEST(ModelRegistry, FingerprintIsContentBased) {
  const std::string fp_tmr = daemon::fingerprint_mrm(models::make_tmr());
  EXPECT_EQ(fp_tmr.size(), 16u);
  EXPECT_EQ(fp_tmr, daemon::fingerprint_mrm(models::make_tmr()));
  EXPECT_NE(fp_tmr, daemon::fingerprint_mrm(models::make_cellphone()));
}

TEST(ModelRegistry, AddIsIdempotentAndKeepsWarmCaches) {
  daemon::ModelRegistry registry;
  const auto first = registry.add(models::make_tmr(), "tmr");
  // Warm the transform cache through the resident handle.
  const std::vector<bool> mask(first->model->num_states(), false);
  first->transforms->absorbing(*first->model, mask);
  const std::size_t warm = first->transforms->size();
  EXPECT_EQ(warm, 1u);

  const auto second = registry.add(models::make_tmr(), "tmr-again");
  EXPECT_EQ(first.get(), second.get());  // same resident entry, caches kept
  EXPECT_EQ(second->transforms->size(), warm);
  EXPECT_EQ(registry.size(), 1u);
  // Both aliases and the fingerprint resolve.
  EXPECT_NE(registry.find("tmr-again"), nullptr);
  EXPECT_NE(registry.find(first->fingerprint), nullptr);
  EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(ModelRegistry, EvictsLeastRecentlyUsedAtCapacity) {
  daemon::ModelRegistry registry(2);
  registry.add(models::make_tmr(), "tmr");
  registry.add(models::make_cellphone(), "cell");
  ASSERT_NE(registry.find("tmr"), nullptr);  // refresh tmr: cell becomes LRU
  registry.add(models::make_mm1k(), "queue");
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.find("cell"), nullptr);
  EXPECT_NE(registry.find("tmr"), nullptr);
  EXPECT_NE(registry.find("queue"), nullptr);
}

// ----------------------------------------------------------------- service

/// Direct (daemon-free) reference results for one model/formula pair, the
/// way a cold mrmcheck process would compute them.
plan::FormulaResult direct_result(const core::Mrm& model, const std::string& text) {
  const auto formula = logic::parse_formula(text);
  const plan::Plan compiled = plan::compile(model, {formula}, checker::CheckerOptions{});
  plan::PlanResult result = plan::execute(compiled, model);
  return std::move(result.formulas[0]);
}

/// Bitwise comparison of a daemon reply against a direct result; returns
/// false on ANY difference. gtest assertions are not thread-safe, so the
/// soak's client threads use this and assert after joining.
bool bitwise_matches(const daemon::FormulaReply& reply,
                     const plan::FormulaResult& expected) {
  if (!reply.ok) return false;
  if (reply.verdicts.size() != expected.verdicts.size()) return false;
  for (std::size_t s = 0; s < expected.verdicts.size(); ++s) {
    const char want = expected.verdicts[s] == checker::Verdict::kSat      ? 'Y'
                      : expected.verdicts[s] == checker::Verdict::kUnsat ? 'N'
                                                                         : '?';
    if (reply.verdicts[s] != want) return false;
  }
  if (reply.has_probabilities != expected.has_probabilities) return false;
  if (expected.has_probabilities) {
    if (reply.probabilities.size() != expected.probabilities.size()) return false;
    for (std::size_t s = 0; s < expected.probabilities.size(); ++s) {
      if (!core::exactly_equal(reply.probabilities[s],
                               expected.probabilities[s].probability)) {
        return false;
      }
    }
  }
  if (reply.has_values != expected.has_values) return false;
  if (expected.has_values) {
    if (reply.values.size() != expected.values.size()) return false;
    for (std::size_t s = 0; s < expected.values.size(); ++s) {
      if (!core::exactly_equal(reply.values[s], expected.values[s])) return false;
    }
  }
  if (expected.has_bounds) {
    if (!reply.has_bounds || reply.bound_lower.size() != expected.bounds.size()) return false;
    for (std::size_t s = 0; s < expected.bounds.size(); ++s) {
      if (!core::exactly_equal(reply.bound_lower[s], expected.bounds[s].lower) ||
          !core::exactly_equal(reply.bound_upper[s], expected.bounds[s].upper)) {
        return false;
      }
    }
  }
  return true;
}

void expect_matches_direct(const daemon::FormulaReply& reply,
                           const plan::FormulaResult& expected) {
  ASSERT_TRUE(reply.ok) << reply.error;
  ASSERT_EQ(reply.verdicts.size(), expected.verdicts.size());
  for (std::size_t s = 0; s < expected.verdicts.size(); ++s) {
    const char want = expected.verdicts[s] == checker::Verdict::kSat      ? 'Y'
                      : expected.verdicts[s] == checker::Verdict::kUnsat ? 'N'
                                                                         : '?';
    EXPECT_EQ(reply.verdicts[s], want) << "state " << s;
  }
  EXPECT_EQ(reply.has_probabilities, expected.has_probabilities);
  if (expected.has_probabilities) {
    ASSERT_EQ(reply.probabilities.size(), expected.probabilities.size());
    for (std::size_t s = 0; s < expected.probabilities.size(); ++s) {
      EXPECT_TRUE(core::exactly_equal(reply.probabilities[s],
                                      expected.probabilities[s].probability))
          << "state " << s;
    }
  }
  if (expected.has_values) {
    ASSERT_EQ(reply.values.size(), expected.values.size());
    for (std::size_t s = 0; s < expected.values.size(); ++s) {
      EXPECT_TRUE(core::exactly_equal(reply.values[s], expected.values[s])) << "state " << s;
    }
  }
}

TEST(CheckService, AnswersBitwiseIdenticalToDirectCheck) {
  daemon::ModelRegistry registry;
  registry.add(models::make_tmr(), "tmr");
  daemon::CheckService service(registry);

  const std::string text = "P(>0.1)[Sup U[0,10][0,300] failed]";
  daemon::CheckRequest request;
  request.model = "tmr";
  request.formulas = {text};
  const daemon::CheckReply reply = service.submit(request).get();
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_FALSE(reply.degraded);
  ASSERT_EQ(reply.formulas.size(), 1u);
  expect_matches_direct(reply.formulas[0], direct_result(models::make_tmr(), text));
}

TEST(CheckService, RepeatQueriesHitTheResidentTransformCache) {
  daemon::ModelRegistry registry;
  const auto resident = registry.add(models::make_tmr(), "tmr");
  daemon::CheckService service(registry);

  daemon::CheckRequest request;
  request.model = "tmr";
  request.formulas = {"P(>0.1)[Sup U[0,10][0,300] failed]"};
  ASSERT_TRUE(service.submit(request).get().ok);
  const std::size_t hits_after_first = resident->transforms->hits();
  ASSERT_TRUE(service.submit(request).get().ok);
  // The second request's transform comes from the warm per-model cache.
  EXPECT_GT(resident->transforms->hits(), hits_after_first);
}

TEST(CheckService, UnknownModelFailsTheRequest) {
  daemon::ModelRegistry registry;
  daemon::CheckService service(registry);
  daemon::CheckRequest request;
  request.model = "ghost";
  request.formulas = {"TT"};
  const daemon::CheckReply reply = service.submit(request).get();
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.error.find("ghost"), std::string::npos);
}

TEST(CheckService, MalformedFormulaFailsAloneInABatch) {
  daemon::ModelRegistry registry;
  registry.add(models::make_tmr(), "tmr");
  daemon::CheckService service(registry);

  daemon::CheckRequest request;
  request.model = "tmr";
  request.formulas = {"S(<0.9) allUp", "THIS IS (not a formula", "TT"};
  const daemon::CheckReply reply = service.submit(request).get();
  ASSERT_TRUE(reply.ok) << reply.error;
  ASSERT_EQ(reply.formulas.size(), 3u);
  EXPECT_TRUE(reply.formulas[0].ok);
  EXPECT_FALSE(reply.formulas[1].ok);
  EXPECT_FALSE(reply.formulas[1].error.empty());
  EXPECT_TRUE(reply.formulas[2].ok);
  EXPECT_EQ(reply.formulas[2].verdicts, std::string(5, 'Y'));
}

TEST(CheckService, ExpiredDeadlineDegradesToUnknownWithInterval) {
  daemon::ModelRegistry registry;
  registry.add(models::make_tmr(), "tmr");
  daemon::CheckService service(registry);

  daemon::CheckRequest request;
  request.model = "tmr";
  request.formulas = {"P(>0.1)[Sup U[0,10][0,300] failed]"};
  request.options.deadline_ms = -1.0;  // expired at submission, deterministically
  const daemon::CheckReply reply = service.submit(request).get();
  ASSERT_TRUE(reply.ok);
  EXPECT_TRUE(reply.degraded);
  ASSERT_EQ(reply.formulas.size(), 1u);
  EXPECT_EQ(reply.formulas[0].verdicts, std::string(5, '?'));
  ASSERT_TRUE(reply.formulas[0].has_bounds);
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_TRUE(core::exactly_equal(reply.formulas[0].bound_lower[s], 0.0));
    EXPECT_TRUE(core::exactly_equal(reply.formulas[0].bound_upper[s], 1.0));
  }
}

TEST(CheckService, FullQueueShedsInsteadOfStalling) {
  daemon::ModelRegistry registry;
  registry.add(models::make_tmr(), "tmr");
  daemon::ServiceOptions options;
  options.max_queue = 0;  // every request is over the admission bound
  daemon::CheckService service(registry, options);

  daemon::CheckRequest request;
  request.model = "tmr";
  request.formulas = {"TT"};
  const daemon::CheckReply reply = service.submit(request).get();
  ASSERT_TRUE(reply.ok);
  EXPECT_TRUE(reply.degraded);
  EXPECT_NE(reply.error.find("queue"), std::string::npos);
  ASSERT_EQ(reply.formulas.size(), 1u);
  EXPECT_EQ(reply.formulas[0].verdicts, std::string(5, '?'));
}

TEST(CheckService, StatsDeltaIsPerBatchNotProcessLifetime) {
  daemon::ModelRegistry registry;
  registry.add(models::make_tmr(), "tmr");
  daemon::CheckService service(registry);
  obs::set_stats_enabled(true);

  daemon::CheckRequest request;
  request.model = "tmr";
  request.formulas = {"P(>0.1)[Sup U[0,10][0,300] failed]"};
  const daemon::CheckReply first = service.submit(request).get();
  const daemon::CheckReply second = service.submit(request).get();
  obs::set_stats_enabled(false);
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  // Both requests did comparable work; cumulative reporting would make the
  // second delta roughly double the first.
  const auto calls = [](const daemon::CheckReply& reply) {
    const auto it = reply.stats_delta.counters.find("plan.compile.calls");
    return it != reply.stats_delta.counters.end() ? it->second : 0u;
  };
  EXPECT_EQ(calls(first), 1u);
  EXPECT_EQ(calls(second), 1u);
}

// -------------------------------------------------------------------- soak

/// The acceptance soak: 8 concurrent clients x 100 queries over mixed
/// resident models against ONE service must return results bitwise-identical
/// to cold direct checks, with over-budget (expired-deadline) requests
/// answered degraded instead of hanging.
TEST(DaemonSoak, ConcurrentClientsMatchColdChecksBitwise) {
  struct Combo {
    const char* model;
    core::Mrm built;
    std::string formula;
    plan::FormulaResult expected;
  };
  std::vector<Combo> combos;
  combos.push_back({"tmr", models::make_tmr(), "P(>0.1)[Sup U[0,10][0,300] failed]", {}});
  combos.push_back({"tmr", models::make_tmr(), "S(<0.9) allUp", {}});
  combos.push_back(
      {"cell", models::make_cellphone(),
       "P(>0.4)[(Call_Idle || Doze) U[0,24][0,600] Call_Initiated]", {}});
  combos.push_back({"queue", models::make_mm1k(), "P(>0.05)[busy U[0,4][0,40] full]", {}});
  combos.push_back({"queue", models::make_mm1k(), "R(<30)[C[0,5]]", {}});
  for (Combo& combo : combos) combo.expected = direct_result(combo.built, combo.formula);

  daemon::ModelRegistry registry;
  registry.add(models::make_tmr(), "tmr");
  registry.add(models::make_cellphone(), "cell");
  registry.add(models::make_mm1k(), "queue");
  daemon::ServiceOptions options;
  options.max_queue = 4096;  // soak admission-free; shedding is tested above
  daemon::CheckService service(registry, options);

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 100;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  std::vector<int> degraded(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const Combo& combo = combos[static_cast<std::size_t>(c + q) % combos.size()];
        daemon::CheckRequest request;
        request.model = combo.model;
        request.formulas = {combo.formula};
        // Every 10th query carries an already-expired deadline: it must come
        // back degraded immediately, never hang, and never perturb others.
        const bool expired = q % 10 == 9;
        if (expired) request.options.deadline_ms = -1.0;
        const daemon::CheckReply reply = service.submit(request).get();
        if (!reply.ok || reply.formulas.size() != 1) {
          ++mismatches[c];
          continue;
        }
        if (expired) {
          if (!reply.degraded ||
              reply.formulas[0].verdicts !=
                  std::string(combo.expected.verdicts.size(), '?')) {
            ++mismatches[c];
          } else {
            ++degraded[c];
          }
          continue;
        }
        if (reply.degraded) {
          ++mismatches[c];
          continue;
        }
        // Bitwise comparison against the cold direct results.
        if (!bitwise_matches(reply.formulas[0], combo.expected)) ++mismatches[c];
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
    EXPECT_EQ(degraded[c], kQueriesPerClient / 10) << "client " << c;
  }
}

// ------------------------------------------------------------------ server

TEST(DaemonServer, HandleLineSpeaksTheProtocol) {
  daemon::ServerOptions options;
  options.socket_path = "/unused";  // handle_line needs no socket
  daemon::DaemonServer server(options);

  // Unknown op and malformed JSON become error replies, never throws.
  EXPECT_NE(server.handle_line(R"({"op":"warp"})").find("\"ok\":false"), std::string::npos);
  EXPECT_NE(server.handle_line("not json").find("\"ok\":false"), std::string::npos);
  // Ping echoes the id.
  const std::string pong = server.handle_line(R"({"op":"ping","id":"42"})");
  EXPECT_NE(pong.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(pong.find("\"id\":\"42\""), std::string::npos);
}

TEST(DaemonServer, SocketRoundTripLoadCheckStatsShutdown) {
  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       (std::string("mrmcheckd_test_") + std::to_string(::getpid()) + ".sock"))
          .string();
  daemon::ServerOptions options;
  options.socket_path = socket_path;
  daemon::DaemonServer server(options);
  server.start();

  const std::string models = CSRLMRM_EXAMPLE_MODELS_DIR;
  {
    daemon::Client client(socket_path);
    obs::JsonValue load = obs::JsonValue::object();
    load.set("op", obs::JsonValue(std::string("load")));
    load.set("name", obs::JsonValue(std::string("tmr")));
    load.set("tra", obs::JsonValue(models + "/tmr.tra"));
    load.set("lab", obs::JsonValue(models + "/tmr.lab"));
    load.set("rewr", obs::JsonValue(models + "/tmr.rewr"));
    load.set("rewi", obs::JsonValue(models + "/tmr.rewi"));
    const obs::JsonValue loaded = client.roundtrip(load);
    ASSERT_TRUE(loaded.at("ok").as_bool());
    EXPECT_TRUE(core::exactly_equal(loaded.at("states").as_number(), 5.0));

    daemon::CheckRequest request;
    request.model = "tmr";
    request.formulas = {"P(>0.1)[Sup U[0,10][0,300] failed]"};
    const daemon::CheckReply reply = daemon::check_reply_from_json(
        client.roundtrip(daemon::check_request_to_json(request)));
    ASSERT_TRUE(reply.ok) << reply.error;
    // The wire reply must match the direct check bitwise, double for double.
    expect_matches_direct(
        reply.formulas[0],
        direct_result(io::load_mrm(models + "/tmr.tra", models + "/tmr.lab",
                                   models + "/tmr.rewr", models + "/tmr.rewi"),
                      request.formulas[0]));

    obs::JsonValue stats = obs::JsonValue::object();
    stats.set("op", obs::JsonValue(std::string("stats")));
    EXPECT_TRUE(client.roundtrip(stats).at("ok").as_bool());

    obs::JsonValue shutdown = obs::JsonValue::object();
    shutdown.set("op", obs::JsonValue(std::string("shutdown")));
    EXPECT_TRUE(client.roundtrip(shutdown).at("ok").as_bool());
  }
  server.wait_for_shutdown();
  server.stop();
  EXPECT_FALSE(std::filesystem::exists(socket_path));
}

}  // namespace

// Pretty printer: output re-parses to a structurally identical formula.
#include "logic/printer.hpp"

#include <gtest/gtest.h>

#include "logic/parser.hpp"

namespace csrlmrm::logic {
namespace {

/// Structural equality of formulas (recursive).
bool structurally_equal(const FormulaPtr& a, const FormulaPtr& b) {
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kAtomic:
      return static_cast<const AtomicFormula&>(*a).name ==
             static_cast<const AtomicFormula&>(*b).name;
    case FormulaKind::kNot:
      return structurally_equal(static_cast<const NotFormula&>(*a).operand,
                                static_cast<const NotFormula&>(*b).operand);
    case FormulaKind::kOr: {
      const auto& la = static_cast<const OrFormula&>(*a);
      const auto& lb = static_cast<const OrFormula&>(*b);
      return structurally_equal(la.lhs, lb.lhs) && structurally_equal(la.rhs, lb.rhs);
    }
    case FormulaKind::kAnd: {
      const auto& la = static_cast<const AndFormula&>(*a);
      const auto& lb = static_cast<const AndFormula&>(*b);
      return structurally_equal(la.lhs, lb.lhs) && structurally_equal(la.rhs, lb.rhs);
    }
    case FormulaKind::kSteady: {
      const auto& sa = static_cast<const SteadyFormula&>(*a);
      const auto& sb = static_cast<const SteadyFormula&>(*b);
      return sa.op == sb.op && sa.bound == sb.bound &&
             structurally_equal(sa.operand, sb.operand);
    }
    case FormulaKind::kProbNext: {
      const auto& na = static_cast<const ProbNextFormula&>(*a);
      const auto& nb = static_cast<const ProbNextFormula&>(*b);
      return na.op == nb.op && na.bound == nb.bound && na.time_bound == nb.time_bound &&
             na.reward_bound == nb.reward_bound && structurally_equal(na.operand, nb.operand);
    }
    case FormulaKind::kProbUntil: {
      const auto& ua = static_cast<const ProbUntilFormula&>(*a);
      const auto& ub = static_cast<const ProbUntilFormula&>(*b);
      return ua.op == ub.op && ua.bound == ub.bound && ua.time_bound == ub.time_bound &&
             ua.reward_bound == ub.reward_bound && structurally_equal(ua.lhs, ub.lhs) &&
             structurally_equal(ua.rhs, ub.rhs);
    }
  }
  return false;
}

class PrinterRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PrinterRoundTrip, ParsePrintParseIsIdentity) {
  const FormulaPtr original = parse_formula(GetParam());
  const std::string printed = to_string(original);
  const FormulaPtr reparsed = parse_formula(printed);
  EXPECT_TRUE(structurally_equal(original, reparsed))
      << "input: " << GetParam() << "\nprinted: " << printed;
}

INSTANTIATE_TEST_SUITE_P(
    Formulas, PrinterRoundTrip,
    ::testing::Values(
        "TT", "FF", "busy", "!a", "a || b", "a && b", "!a && (b || c)",
        "S(>0.5) busy", "S(<=0.1)(a || b)",
        "P(>0.1)[a U b]", "P(>=0.3)[a U[0,3][0,23] b]",
        "P(<0.5)[TT U[0,600][0,50] busy]", "P(>0.8)[X sleep]",
        "P(>0.8)[X[0,10][0,50] sleep]",
        "P(>0.1)[Sup U[0,500][0,3000] failed]",
        "P(>0.8)[X (P(>0.5)[X[0,10][0,50] sleep])]",
        "S(>0.3)(P(>0.1)[a U[0,1][0,2] b])",
        "P(>0.1)[a U[0,~][0,5] b]",
        "P(>0.1)[(busy || idle) U[0,10][0,50] sleep]"));

TEST(Printer, AppendixFormulaPrintsRecognizably) {
  const auto f = parse_formula("P(>= 0.3) [a U[0,3][0,23] b]");
  EXPECT_EQ(to_string(f), "P(>= 0.3) [a U[0,3][0,23] b]");
}

TEST(Printer, TrivialBoundsAreOmitted) {
  const auto f = parse_formula("P(<0.5)[a U b]");
  EXPECT_EQ(to_string(f), "P(< 0.5) [a U b]");
}

TEST(Printer, RejectsNullFormula) {
  EXPECT_THROW(to_string(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::logic

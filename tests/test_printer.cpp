// Pretty printer: output re-parses to a structurally identical formula.
#include "logic/printer.hpp"

#include <gtest/gtest.h>

#include "logic/parser.hpp"
#include "models/random_formula.hpp"

namespace csrlmrm::logic {
namespace {

/// Structural equality of formulas (recursive).
bool structurally_equal(const FormulaPtr& a, const FormulaPtr& b) {
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kAtomic:
      return static_cast<const AtomicFormula&>(*a).name ==
             static_cast<const AtomicFormula&>(*b).name;
    case FormulaKind::kNot:
      return structurally_equal(static_cast<const NotFormula&>(*a).operand,
                                static_cast<const NotFormula&>(*b).operand);
    case FormulaKind::kOr: {
      const auto& la = static_cast<const OrFormula&>(*a);
      const auto& lb = static_cast<const OrFormula&>(*b);
      return structurally_equal(la.lhs, lb.lhs) && structurally_equal(la.rhs, lb.rhs);
    }
    case FormulaKind::kAnd: {
      const auto& la = static_cast<const AndFormula&>(*a);
      const auto& lb = static_cast<const AndFormula&>(*b);
      return structurally_equal(la.lhs, lb.lhs) && structurally_equal(la.rhs, lb.rhs);
    }
    case FormulaKind::kSteady: {
      const auto& sa = static_cast<const SteadyFormula&>(*a);
      const auto& sb = static_cast<const SteadyFormula&>(*b);
      return sa.op == sb.op && sa.bound == sb.bound &&
             structurally_equal(sa.operand, sb.operand);
    }
    case FormulaKind::kProbNext: {
      const auto& na = static_cast<const ProbNextFormula&>(*a);
      const auto& nb = static_cast<const ProbNextFormula&>(*b);
      return na.op == nb.op && na.bound == nb.bound && na.time_bound == nb.time_bound &&
             na.reward_bound == nb.reward_bound && structurally_equal(na.operand, nb.operand);
    }
    case FormulaKind::kProbUntil: {
      const auto& ua = static_cast<const ProbUntilFormula&>(*a);
      const auto& ub = static_cast<const ProbUntilFormula&>(*b);
      return ua.op == ub.op && ua.bound == ub.bound && ua.time_bound == ub.time_bound &&
             ua.reward_bound == ub.reward_bound && structurally_equal(ua.lhs, ub.lhs) &&
             structurally_equal(ua.rhs, ub.rhs);
    }
    case FormulaKind::kExpectedReward: {
      const auto& ra = static_cast<const ExpectedRewardFormula&>(*a);
      const auto& rb = static_cast<const ExpectedRewardFormula&>(*b);
      if (ra.op != rb.op || ra.bound != rb.bound || ra.query != rb.query) return false;
      if (ra.query == RewardQuery::kCumulative) return ra.time_horizon == rb.time_horizon;
      if (ra.query == RewardQuery::kReachability) {
        return structurally_equal(ra.operand, rb.operand);
      }
      return true;
    }
  }
  return false;
}

class PrinterRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PrinterRoundTrip, ParsePrintParseIsIdentity) {
  const FormulaPtr original = parse_formula(GetParam());
  const std::string printed = to_string(original);
  const FormulaPtr reparsed = parse_formula(printed);
  EXPECT_TRUE(structurally_equal(original, reparsed))
      << "input: " << GetParam() << "\nprinted: " << printed;
}

INSTANTIATE_TEST_SUITE_P(
    Formulas, PrinterRoundTrip,
    ::testing::Values(
        "TT", "FF", "busy", "!a", "a || b", "a && b", "!a && (b || c)",
        "S(>0.5) busy", "S(<=0.1)(a || b)",
        "P(>0.1)[a U b]", "P(>=0.3)[a U[0,3][0,23] b]",
        "P(<0.5)[TT U[0,600][0,50] busy]", "P(>0.8)[X sleep]",
        "P(>0.8)[X[0,10][0,50] sleep]",
        "P(>0.1)[Sup U[0,500][0,3000] failed]",
        "P(>0.8)[X (P(>0.5)[X[0,10][0,50] sleep])]",
        "S(>0.3)(P(>0.1)[a U[0,1][0,2] b])",
        "P(>0.1)[a U[0,~][0,5] b]",
        "P(>0.1)[(busy || idle) U[0,10][0,50] sleep]",
        "R(<= 25)[C[0,10]]", "R(<100)[F failed]", "R(>=3.2)[S]",
        "R(<5)[F (a && P(>0.1)[b U c])]"));

TEST(Printer, AppendixFormulaPrintsRecognizably) {
  const auto f = parse_formula("P(>= 0.3) [a U[0,3][0,23] b]");
  EXPECT_EQ(to_string(f), "P(>= 0.3) [a U[0,3][0,23] b]");
}

TEST(Printer, TrivialBoundsAreOmitted) {
  const auto f = parse_formula("P(<0.5)[a U b]");
  EXPECT_EQ(to_string(f), "P(< 0.5) [a U b]");
}

TEST(Printer, RejectsNullFormula) {
  EXPECT_THROW(to_string(nullptr), std::invalid_argument);
}

// Property form of the round trip over the seeded generator: every random
// formula (arbitrary bound shapes, shortest-form numeric literals, nesting)
// must satisfy parse(print(f)) == f under logic::equal — the same structural
// equality the plan compiler's CSE pass keys on. 200 seeds.
class RandomRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RandomRoundTrip, ParsePrintParseIsIdentity) {
  const FormulaPtr original = models::make_random_formula(GetParam());
  const std::string printed = to_string(original);
  FormulaPtr reparsed;
  ASSERT_NO_THROW(reparsed = parse_formula(printed)) << "printed: " << printed;
  EXPECT_TRUE(equal(original, reparsed)) << "printed: " << printed;
  // Printing is idempotent: the reparsed tree prints to the same text.
  EXPECT_EQ(to_string(reparsed), printed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundTrip, ::testing::Range(1u, 201u));

// The same property under hostile numerics: deep nesting plus bound
// magnitudes that force format_number into exponent notation (tiny rewards)
// and many-digit shortest forms (huge horizons).
class WildRandomRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WildRandomRoundTrip, ParsePrintParseIsIdentity) {
  models::RandomFormulaConfig config;
  config.max_depth = 6;
  config.probabilistic_probability = 0.25;
  config.max_time_bound = 1e9;
  config.max_reward_bound = 1e-6;
  const FormulaPtr original = models::make_random_formula(GetParam(), config);
  const std::string printed = to_string(original);
  FormulaPtr reparsed;
  ASSERT_NO_THROW(reparsed = parse_formula(printed)) << "printed: " << printed;
  EXPECT_TRUE(equal(original, reparsed)) << "printed: " << printed;
  EXPECT_EQ(to_string(reparsed), printed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WildRandomRoundTrip, ::testing::Range(1u, 51u));

}  // namespace
}  // namespace csrlmrm::logic

// End-to-end integration: the chapter-5 experimental pipeline in miniature.
#include <gtest/gtest.h>

#include "checker/sat.hpp"
#include "io/model_files.hpp"
#include "logic/parser.hpp"
#include "models/cellphone.hpp"
#include "models/tmr.hpp"

#include <filesystem>

namespace csrlmrm {
namespace {

TEST(Integration, TmrTable53FirstRowReproduces) {
  // P(>0.1)[Sup U[0,50][0,3000] failed] from the fully-operational state
  // with w = 1e-11: the thesis reports P = 0.005087386... and an error bound
  // of order 1e-9 (Table 5.3, row t=50). The probability is rate-driven
  // (the reward bound is slack at t=50), so our reproduction matches it
  // closely even though the thesis's reward magnitudes are unpublished.
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-11;
  checker::ModelChecker checker(model, options);
  const auto values = checker.path_probabilities(
      logic::parse_formula("P(>0.1)[Sup U[0,50][0,3000] failed]"));
  EXPECT_NEAR(values[0].probability, 0.005087386344177422, 1e-6);
  EXPECT_LT(values[0].error_bound, 1e-7);
  EXPECT_GT(values[0].error_bound, 0.0);
  // And the satisfaction verdict: 0.005 < 0.1, so state 0 does not satisfy.
  EXPECT_FALSE(checker.satisfies(
      0, logic::parse_formula("P(>0.1)[Sup U[0,50][0,3000] failed]")));
}

TEST(Integration, TmrTable58DiscretizationReproducesExactly) {
  // With the recovered reward structure (rho(k) = 8 + 2k, repair impulses
  // 2.5/5) the discretization engine reproduces the published Table 5.8
  // values to near machine precision — strong evidence the calibration
  // recovered the thesis's actual (unpublished) reward files.
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  checker::CheckerOptions options;
  options.until_method = checker::UntilMethod::kDiscretization;
  options.discretization.step = 0.25;
  checker::ModelChecker checker(model, options);
  const double paper[] = {0.005061779415718182, 0.010175568967901463, 0.015267158582408371,
                          0.020332872743413364};
  for (int row = 0; row < 4; ++row) {
    const double t = 50.0 * (row + 1);
    const auto values = checker.path_probabilities(logic::parse_formula(
        "P(>0.1)[Sup U[0," + std::to_string(t) + "][0,3000] failed]"));
    EXPECT_NEAR(values[0].probability, paper[row], 1e-13) << "t=" << t;
  }
}

TEST(Integration, NmrTable55RowsWithinTruncationError) {
  // The 11-module calibration (rho(k) = 24 + k, impulses 1/2) matches every
  // published Table 5.5 row within the experiment's own truncation error.
  const core::Mrm model = models::make_tmr(models::chapter5_nmr_config());
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-8;
  checker::ModelChecker checker(model, options);
  const auto values =
      checker.path_probabilities(logic::parse_formula("P(>0.1)[TT U[0,100][0,2000] allUp]"));
  const double paper[] = {0.00482952588914756, 0.0068486521925764, 0.0131488893307554,
                          0.0307864803541378,  0.0735906999244802, 0.161653274832831,
                          0.311639369763902,   0.516966415983422,  0.733673548795558,
                          0.899015328912742,   0.980329681725223};
  for (int working = 0; working <= 10; ++working) {
    const auto state = models::tmr_state_with_failed(11 - working);
    EXPECT_NEAR(values[state].probability, paper[working],
                values[state].error_bound + 1e-6)
        << "n=" << working;
  }
}

TEST(Integration, TmrRewardBoundCreatesThePlateau) {
  // The signature shape of Tables 5.3/5.4: the probability stops growing
  // once rho(allUp) * t exceeds the reward bound r = 3000 (around t ~ 430
  // with our calibration).
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-13;
  checker::ModelChecker checker(model, options);

  const auto at = [&](double t) {
    const auto values = checker.path_probabilities(logic::parse_formula(
        "P(>0.1)[Sup U[0," + std::to_string(t) + "][0,3000] failed]"));
    return values[0].probability;
  };
  const double p300 = at(300.0);
  const double p420 = at(420.0);
  const double p500 = at(500.0);
  EXPECT_GT(p420, p300 * 1.2);          // still growing roughly linearly
  EXPECT_LT(p500 - p420, p420 - p300);  // plateau: growth collapses
}

TEST(Integration, TmrUnboundedRewardKeepsGrowing) {
  // Control experiment: without the reward bound there is no plateau.
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  checker::ModelChecker checker(model);
  const auto at = [&](double t) {
    const auto values = checker.path_probabilities(logic::parse_formula(
        "P(>0.1)[Sup U[0," + std::to_string(t) + "] failed]"));
    return values[0].probability;
  };
  EXPECT_GT(at(500.0) - at(420.0), 0.5 * (at(420.0) - at(340.0)));
}

TEST(Integration, ElevenModuleCurveIsMonotoneInWorkingModules) {
  // Figure 5.4's S-curve: P(tt U^[0,100]_[0,2000] allUp) rises with the
  // number of initially working modules.
  const core::Mrm model = models::make_tmr(models::chapter5_nmr_config());
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-8;
  checker::ModelChecker checker(model, options);
  const auto values =
      checker.path_probabilities(logic::parse_formula("P(>0.1)[TT U[0,100][0,2000] allUp]"));
  double previous = -1.0;
  for (int working = 0; working <= 10; ++working) {
    const auto state = models::tmr_state_with_failed(11 - working);
    EXPECT_GE(values[state].probability, previous - 1e-9) << "working=" << working;
    previous = values[state].probability;
  }
  EXPECT_LT(values[models::tmr_state_with_failed(11)].probability, 0.05);  // n=0
  EXPECT_GT(values[models::tmr_state_with_failed(1)].probability, 0.9);    // n=10
}

TEST(Integration, VariableFailureRatesLowerTheCurve) {
  // Figure 5.5 vs 5.4: with failure rates scaling in the number of working
  // modules, reaching allUp is (weakly) less likely from every start.
  const models::TmrConfig constant_config = models::chapter5_nmr_config();
  const models::TmrConfig variable_config = models::chapter5_nmr_config(true);

  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-8;
  const core::Mrm constant_model = models::make_tmr(constant_config);
  const core::Mrm variable_model = models::make_tmr(variable_config);
  checker::ModelChecker constant_checker(constant_model, options);
  checker::ModelChecker variable_checker(variable_model, options);
  const auto formula = logic::parse_formula("P(>0.1)[TT U[0,100][0,2000] allUp]");
  const auto constant_values = constant_checker.path_probabilities(formula);
  const auto variable_values = variable_checker.path_probabilities(formula);
  for (int working = 1; working <= 10; ++working) {
    const auto state = models::tmr_state_with_failed(11 - working);
    EXPECT_LE(variable_values[state].probability,
              constant_values[state].probability + 0.02)
        << "working=" << working;
  }
}

TEST(Integration, CellphoneUniformizationAndDiscretizationAgree) {
  // The thesis's own correctness argument (5.3.3/ch. 6): the two numerical
  // methods converge to the same value. Table 5.1 workload.
  const core::Mrm model = models::make_cellphone();
  const auto formula =
      logic::parse_formula("P(>0.5)[(Call_Idle || Doze) U[0,24][0,600] Call_Initiated]");

  checker::CheckerOptions uniformization;
  uniformization.uniformization.truncation_probability = 1e-13;
  checker::ModelChecker u_checker(model, uniformization);
  const double by_uniformization =
      u_checker.path_probabilities(formula)[models::kCellphoneStart].probability;

  checker::CheckerOptions discretization;
  discretization.until_method = checker::UntilMethod::kDiscretization;
  discretization.discretization.step = 1.0 / 64.0;
  checker::ModelChecker d_checker(model, discretization);
  const double by_discretization =
      d_checker.path_probabilities(formula)[models::kCellphoneStart].probability;

  EXPECT_NEAR(by_uniformization, by_discretization, 5e-3);
  EXPECT_GT(by_uniformization, 0.2);
  EXPECT_LT(by_uniformization, 0.9);
}

TEST(Integration, TmrModelSurvivesFileRoundTrip) {
  // Save the TMR model to the appendix formats, reload, re-check the
  // Table 5.3 first row: identical results.
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  const auto dir = std::filesystem::temp_directory_path() / "csrlmrm_integration";
  std::filesystem::create_directories(dir);
  const std::string prefix = (dir / "tmr").string();
  io::save_mrm(model, prefix);
  const core::Mrm loaded =
      io::load_mrm(prefix + ".tra", prefix + ".lab", prefix + ".rewr", prefix + ".rewi");

  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-11;
  checker::ModelChecker original_checker(model, options);
  checker::ModelChecker loaded_checker(loaded, options);
  const auto formula = logic::parse_formula("P(>0.1)[Sup U[0,50][0,3000] failed]");
  EXPECT_DOUBLE_EQ(original_checker.path_probabilities(formula)[0].probability,
                   loaded_checker.path_probabilities(formula)[0].probability);
  std::filesystem::remove_all(dir);
}

TEST(Integration, SteadyStateOfTmrFavorsOperationalStates) {
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  checker::ModelChecker checker(model);
  // With repair much faster than failure the system is almost always Sup.
  EXPECT_TRUE(checker.satisfies(0, logic::parse_formula("S(>0.99) Sup")));
  EXPECT_FALSE(checker.satisfies(0, logic::parse_formula("S(>0.5) failed")));
}

}  // namespace
}  // namespace csrlmrm

// Property-based validation of the signature-class DP until engine
// (class_explorer.hpp) against the DFS path generator it replaces
// (path_explorer.hpp, Algorithm 4.7). Both engines compute a lower
// approximation p with p <= p_exact <= p + error_bound, so on every model
// they must agree within the sum of their reported bounds — checked here
// over 50 seeded random impulse-reward MRMs rather than hand-picked
// examples. The DP additionally promises bitwise determinism across worker
// thread counts and batch-vs-single-start equivalence; both are asserted
// exactly (==), not within a tolerance.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "checker/options.hpp"
#include "checker/until.hpp"
#include "core/transform.hpp"
#include "models/random_mrm.hpp"
#include "numeric/class_explorer.hpp"
#include "numeric/path_explorer.hpp"
#include "obs/stats.hpp"

namespace csrlmrm {
namespace {

struct UntilSetup {
  core::Mrm transformed;
  std::vector<bool> psi;
  std::vector<bool> dead;
};

/// The checker's until preprocessing (phi from label "a" padded with the even
/// states, psi from label "b" with a seeded fallback) applied to one random
/// model — the same recipe as test_property_cross_validation.cpp, so the two
/// property suites exercise comparable formula shapes.
UntilSetup make_setup(const core::Mrm& model, std::uint32_t seed) {
  std::vector<bool> phi = model.labels().states_with("a");
  std::vector<bool> psi = model.labels().states_with("b");
  bool any_psi = false;
  for (const auto value : psi) any_psi = any_psi || value;
  if (!any_psi) psi[seed % model.num_states()] = true;
  for (std::size_t s = 0; s < phi.size(); ++s) phi[s] = phi[s] || (s % 2 == 0);

  std::vector<bool> absorb(model.num_states());
  std::vector<bool> dead(model.num_states());
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    absorb[s] = !phi[s] || psi[s];
    dead[s] = !phi[s] && !psi[s];
  }
  return {core::make_absorbing(model, absorb), std::move(psi), std::move(dead)};
}

core::Mrm make_model(std::uint32_t seed) {
  models::RandomMrmConfig config;
  config.num_states = 6;
  config.max_rate = 1.0;  // keeps Lambda*t small enough for path enumeration
  return models::make_random_mrm(seed, config);
}

/// Per-seed query parameters, derived deterministically so the suite needs no
/// runtime randomness.
double time_bound_of(std::uint32_t seed) { return 0.5 + 0.25 * (seed % 7); }
double reward_bound_of(std::uint32_t seed) { return 1.0 + (seed % 9); }

std::vector<core::StateIndex> all_states(const core::Mrm& model) {
  std::vector<core::StateIndex> starts(model.num_states());
  for (core::StateIndex s = 0; s < model.num_states(); ++s) starts[s] = s;
  return starts;
}

class ClassExplorerCrossEngine : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ClassExplorerCrossEngine, AgreesWithDfsWithinCombinedErrorBounds) {
  const std::uint32_t seed = GetParam();
  const core::Mrm model = make_model(seed);
  const UntilSetup setup = make_setup(model, seed);
  const double t = time_bound_of(seed);
  const double r = reward_bound_of(seed);

  numeric::UniformizationUntilEngine dfs(setup.transformed, setup.psi, setup.dead);
  numeric::SignatureClassUntilEngine classdp(setup.transformed, setup.psi, setup.dead);
  numeric::PathExplorerOptions options;
  options.truncation_probability = 1e-10;

  const auto batch = classdp.compute_batch(all_states(model), t, r, options);
  for (core::StateIndex start = 0; start < model.num_states(); ++start) {
    const auto reference = dfs.compute(start, t, r, options);
    const auto& candidate = batch[start];
    EXPECT_GE(candidate.probability, -1e-12) << "start=" << start;
    EXPECT_LE(candidate.probability, 1.0 + 1e-12) << "start=" << start;
    EXPECT_GE(candidate.error_bound, 0.0) << "start=" << start;
    // Both engines bracket the same exact value from below, so the point
    // estimates can differ by at most the combined truncation error.
    EXPECT_NEAR(candidate.probability, reference.probability,
                candidate.error_bound + reference.error_bound + 1e-12)
        << "start=" << start << " t=" << t << " r=" << r;
  }
}

// 50 random impulse-reward MRMs (the generator attaches impulses to ~40% of
// transitions, so nearly every seed exercises non-empty j signatures).
INSTANTIATE_TEST_SUITE_P(RandomModels, ClassExplorerCrossEngine,
                         ::testing::Range(1u, 51u));

class ClassExplorerBatch : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ClassExplorerBatch, BatchIsBitwiseEqualToSingleStartRuns) {
  const std::uint32_t seed = GetParam();
  const core::Mrm model = make_model(seed);
  const UntilSetup setup = make_setup(model, seed);
  const double t = time_bound_of(seed);
  const double r = reward_bound_of(seed);

  numeric::SignatureClassUntilEngine engine(setup.transformed, setup.psi, setup.dead);
  numeric::PathExplorerOptions options;
  options.truncation_probability = 1e-10;

  const auto batch = engine.compute_batch(all_states(model), t, r, options);
  for (core::StateIndex start = 0; start < model.num_states(); ++start) {
    const auto single = engine.compute(start, t, r, options);
    EXPECT_EQ(batch[start].probability, single.probability) << "start=" << start;  // bitwise
    EXPECT_EQ(batch[start].error_bound, single.error_bound) << "start=" << start;
  }
}

TEST_P(ClassExplorerBatch, DuplicateStartsGetIdenticalSlots) {
  const std::uint32_t seed = GetParam();
  const core::Mrm model = make_model(seed);
  const UntilSetup setup = make_setup(model, seed);

  numeric::SignatureClassUntilEngine engine(setup.transformed, setup.psi, setup.dead);
  const std::vector<core::StateIndex> starts{0, 1, 0};
  const auto batch = engine.compute_batch(starts, time_bound_of(seed), reward_bound_of(seed));
  EXPECT_EQ(batch[0].probability, batch[2].probability);
  EXPECT_EQ(batch[0].error_bound, batch[2].error_bound);
}

INSTANTIATE_TEST_SUITE_P(RandomModels, ClassExplorerBatch,
                         ::testing::Values(1u, 8u, 15u, 22u, 29u, 36u, 43u, 50u));

class ClassExplorerDeterminism : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ClassExplorerDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  const std::uint32_t seed = GetParam();
  const core::Mrm model = make_model(seed);
  const UntilSetup setup = make_setup(model, seed);
  const double t = time_bound_of(seed);
  const double r = reward_bound_of(seed);

  numeric::SignatureClassUntilEngine engine(setup.transformed, setup.psi, setup.dead);
  numeric::PathExplorerOptions options;
  options.truncation_probability = 1e-10;
  options.threads = 1;
  const auto reference = engine.compute_batch(all_states(model), t, r, options);
  for (const unsigned threads : {2u, 8u}) {
    options.threads = threads;
    const auto other = engine.compute_batch(all_states(model), t, r, options);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(other[i].probability, reference[i].probability)
          << "threads=" << threads << " start=" << i;  // bitwise, sorted merge
      EXPECT_EQ(other[i].error_bound, reference[i].error_bound)
          << "threads=" << threads << " start=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, ClassExplorerDeterminism,
                         ::testing::Values(2u, 9u, 16u, 23u, 30u, 37u, 44u));

TEST(ClassExplorerEdgeCases, ZeroTimeBoundIsThePsiIndicator) {
  const core::Mrm model = make_model(3);
  const UntilSetup setup = make_setup(model, 3);
  numeric::SignatureClassUntilEngine engine(setup.transformed, setup.psi, setup.dead);
  const auto batch = engine.compute_batch(all_states(model), 0.0, 5.0);
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    const double expected = (!setup.dead[s] && setup.psi[s]) ? 1.0 : 0.0;
    EXPECT_EQ(batch[s].probability, expected) << "start=" << s;
    EXPECT_EQ(batch[s].error_bound, 0.0) << "start=" << s;
  }
}

TEST(ClassExplorerEdgeCases, DeadStartsAreExactlyZero) {
  const core::Mrm model = make_model(4);
  const UntilSetup setup = make_setup(model, 4);
  numeric::SignatureClassUntilEngine engine(setup.transformed, setup.psi, setup.dead);
  const auto batch = engine.compute_batch(all_states(model), 1.5, 4.0);
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    if (!setup.dead[s]) continue;
    EXPECT_EQ(batch[s].probability, 0.0) << "start=" << s;
    EXPECT_EQ(batch[s].error_bound, 0.0) << "start=" << s;
  }
}

TEST(ClassExplorerEdgeCases, ExhaustedClassBudgetThrowsNodeBudgetError) {
  const core::Mrm model = make_model(5);
  const UntilSetup setup = make_setup(model, 5);
  numeric::SignatureClassUntilEngine engine(setup.transformed, setup.psi, setup.dead);
  numeric::PathExplorerOptions options;
  options.truncation_probability = 1e-10;
  options.max_nodes = 3;
  EXPECT_THROW(engine.compute_batch(all_states(model), 2.0, 6.0, options),
               numeric::NodeBudgetError);
}

TEST(ClassExplorerEdgeCases, RejectsInvalidArguments) {
  const core::Mrm model = make_model(6);
  const UntilSetup setup = make_setup(model, 6);
  numeric::SignatureClassUntilEngine engine(setup.transformed, setup.psi, setup.dead);
  EXPECT_THROW(engine.compute(model.num_states(), 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(engine.compute(0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(engine.compute(0, 1.0, -1.0), std::invalid_argument);
  numeric::PathExplorerOptions options;
  options.truncation_probability = 0.0;
  EXPECT_THROW(engine.compute(0, 1.0, 1.0, options), std::invalid_argument);
}

class ClassDpCheckerAgreement : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ClassDpCheckerAgreement, CheckerLevelResultsMatchDfpgEngine) {
  const std::uint32_t seed = GetParam();
  const core::Mrm model = make_model(seed);
  std::vector<bool> phi = model.labels().states_with("a");
  std::vector<bool> psi = model.labels().states_with("b");
  bool any_psi = false;
  for (const auto value : psi) any_psi = any_psi || value;
  if (!any_psi) psi[seed % model.num_states()] = true;
  for (std::size_t s = 0; s < phi.size(); ++s) phi[s] = phi[s] || (s % 2 == 0);

  const double t = time_bound_of(seed);
  const double r = reward_bound_of(seed);
  checker::CheckerOptions classdp;
  classdp.until_engine = checker::UntilEngine::kClassDp;
  checker::CheckerOptions dfpg;
  dfpg.until_engine = checker::UntilEngine::kDfpg;

  const auto lhs = checker::until_probabilities(model, phi, psi, logic::up_to(t),
                                                logic::up_to(r), classdp);
  const auto rhs = checker::until_probabilities(model, phi, psi, logic::up_to(t),
                                                logic::up_to(r), dfpg);
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t s = 0; s < lhs.size(); ++s) {
    EXPECT_NEAR(lhs[s].probability, rhs[s].probability,
                lhs[s].error_bound + rhs[s].error_bound + 1e-12)
        << "seed=" << seed << " state=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, ClassDpCheckerAgreement,
                         ::testing::Values(3u, 11u, 19u, 27u, 35u, 47u));

TEST(ClassDpCheckerFallback, TinyNodeBudgetDegradesGracefully) {
  // With the DP's class budget forced to a handful of frontier rows the
  // checker must fall back (per BudgetPolicy) instead of propagating
  // NodeBudgetError, and still return a sane probability vector.
  const core::Mrm model = make_model(7);
  std::vector<bool> phi(model.num_states(), true);
  std::vector<bool> psi = model.labels().states_with("b");
  bool any_psi = false;
  for (const auto value : psi) any_psi = any_psi || value;
  if (!any_psi) psi[0] = true;

  checker::CheckerOptions options;
  options.until_engine = checker::UntilEngine::kClassDp;
  options.uniformization.max_nodes = 3;
  std::vector<checker::UntilValue> values;
  ASSERT_NO_THROW(values = checker::until_probabilities(model, phi, psi, logic::up_to(1.5),
                                                        logic::up_to(6.0), options));
  for (std::size_t s = 0; s < values.size(); ++s) {
    EXPECT_GE(values[s].probability, -1e-12) << "state=" << s;
    EXPECT_LE(values[s].probability, 1.0 + 1e-12) << "state=" << s;
  }
}

TEST(ClassDpCheckerFallback, BudgetExhaustionHandsOffToDfpgBitwise) {
  // Regression pin for the classdp -> dfpg hand-off: when the batched DP
  // exhausts max_nodes mid-flight the checker degrades to the per-state DFPG
  // fan-out, and — because every individual DFS fits the same budget — must
  // return exactly the verdict a direct kDfpg run produces, while recording
  // the hand-off in classdp.fallbacks (and nothing further down the chain).
  obs::set_stats_enabled(true);
  obs::StatsRegistry::global().reset();

  // Seed and bounds picked for a wide calibration window: here the batched
  // DP expands ~3x the frontier classes of the widest single DFS start.
  const std::uint32_t seed = 1;
  const core::Mrm model = make_model(seed);
  const UntilSetup setup = make_setup(model, seed);
  const double t = 3.0;
  const double r = 8.0;

  // Calibrate the budget window from the engines' own node counts: the
  // non-trivial starts are exactly the states the checker batches (Psi
  // starts score 1 up front, dead starts 0).
  std::vector<core::StateIndex> starts;
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    if (!setup.psi[s] && !setup.dead[s]) starts.push_back(s);
  }
  ASSERT_FALSE(starts.empty());
  numeric::SignatureClassUntilEngine classdp_engine(setup.transformed, setup.psi, setup.dead);
  numeric::UniformizationUntilEngine dfpg_engine(setup.transformed, setup.psi, setup.dead);
  const numeric::PathExplorerOptions probe;  // the checker's default w
  const auto probe_batch = classdp_engine.compute_batch(starts, t, r, probe);
  std::size_t batch_nodes = 0;
  for (const auto& slot : probe_batch) {
    batch_nodes = std::max(batch_nodes, slot.nodes_expanded);
  }
  std::size_t dfs_max = 0;
  for (const auto s : starts) {
    dfs_max = std::max(dfs_max, dfpg_engine.compute(s, t, r, probe).nodes_expanded);
  }
  // The impulse-heavy random model defeats class merging, so the whole-batch
  // DP does strictly more work than any one DFS start — the window where the
  // hand-off both triggers and succeeds.
  ASSERT_LT(dfs_max, batch_nodes) << "seed " << seed << " gives no budget window";

  std::vector<bool> phi = model.labels().states_with("a");
  std::vector<bool> psi = model.labels().states_with("b");
  bool any_psi = false;
  for (const auto value : psi) any_psi = any_psi || value;
  if (!any_psi) psi[seed % model.num_states()] = true;
  for (std::size_t s = 0; s < phi.size(); ++s) phi[s] = phi[s] || (s % 2 == 0);

  checker::CheckerOptions starved;
  starved.until_engine = checker::UntilEngine::kClassDp;
  starved.uniformization.max_nodes = dfs_max;
  const auto fell_back = checker::until_probabilities(model, phi, psi, logic::up_to(t),
                                                      logic::up_to(r), starved);

  checker::CheckerOptions direct;
  direct.until_engine = checker::UntilEngine::kDfpg;
  direct.uniformization.max_nodes = dfs_max;
  const auto reference = checker::until_probabilities(model, phi, psi, logic::up_to(t),
                                                      logic::up_to(r), direct);

  const auto& registry = obs::StatsRegistry::global();
  EXPECT_GE(registry.counter("classdp.fallbacks"), 1u);
  // Every per-start DFS fit the budget, so the deeper degradation stages
  // (widening, discretization) must have stayed untouched in both runs.
  EXPECT_EQ(registry.counter("uniformization.widenings"), 0u);
  EXPECT_EQ(registry.counter("uniformization.fallbacks"), 0u);

  ASSERT_EQ(fell_back.size(), reference.size());
  for (std::size_t s = 0; s < fell_back.size(); ++s) {
    EXPECT_EQ(fell_back[s].probability, reference[s].probability) << "state " << s;  // bitwise
    EXPECT_EQ(fell_back[s].error_bound, reference[s].error_bound) << "state " << s;
    EXPECT_EQ(fell_back[s].bound.lower, reference[s].bound.lower) << "state " << s;
    EXPECT_EQ(fell_back[s].bound.upper, reference[s].bound.upper) << "state " << s;
  }

  obs::StatsRegistry::global().reset();
  obs::set_stats_enabled(false);
}

}  // namespace
}  // namespace csrlmrm

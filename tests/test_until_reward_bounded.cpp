// Time- and reward-bounded until (P2) by uniformization: closed forms, the
// thesis's worked Example 3.6, error-bound behaviour, and engine options.
#include <gtest/gtest.h>

#include <cmath>

#include "checker/until.hpp"
#include "core/transform.hpp"
#include "models/wavelan.hpp"
#include "numeric/path_explorer.hpp"

namespace csrlmrm::checker {
namespace {

using logic::Interval;

std::vector<bool> mask(std::size_t n, std::initializer_list<int> members) {
  std::vector<bool> m(n, false);
  for (int i : members) m[static_cast<std::size_t>(i)] = true;
  return m;
}

CheckerOptions tight(double w = 1e-14) {
  CheckerOptions options;
  options.uniformization.truncation_probability = w;
  return options;
}

TEST(RewardBoundedUntil, RewardBoundCapsTheUsefulTime) {
  // 0 -> 1 at rate mu with rho(0) = c: the jump must happen before
  // min(t, r/c), so P = 1 - exp(-mu min(t, r/c)).
  const double mu = 0.9;
  const double c = 2.0;
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, mu);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)), {c, 5.0});

  struct Case {
    double t, r;
  };
  for (const auto& [t, r] : {Case{1.0, 10.0}, Case{3.0, 2.0}, Case{2.0, 4.0}}) {
    const auto values = until_probabilities(model, std::vector<bool>(2, true), mask(2, {1}),
                                            logic::up_to(t), logic::up_to(r), tight());
    const double expected = 1.0 - std::exp(-mu * std::min(t, r / c));
    EXPECT_NEAR(values[0].probability, expected, 1e-8) << "t=" << t << " r=" << r;
  }
}

TEST(RewardBoundedUntil, ImpulseConsumesRewardBudget) {
  // As above with impulse iota on the jump: need c*T + iota <= r.
  const double mu = 1.2;
  const double c = 1.0;
  const double iota = 3.0;
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, mu);
  core::ImpulseRewardsBuilder impulses(2);
  impulses.add(0, 1, iota);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)), {c, 0.0},
                        impulses.build());

  const double t = 5.0;
  const double r = 4.0;  // jump must happen before (r - iota)/c = 1
  const auto values = until_probabilities(model, std::vector<bool>(2, true), mask(2, {1}),
                                          logic::up_to(t), logic::up_to(r), tight());
  EXPECT_NEAR(values[0].probability, 1.0 - std::exp(-mu * 1.0), 1e-8);

  // Impulse alone busts the budget: probability 0.
  const auto blocked = until_probabilities(model, std::vector<bool>(2, true), mask(2, {1}),
                                           logic::up_to(t), logic::up_to(2.0), tight());
  EXPECT_NEAR(blocked[0].probability, 0.0, 1e-12);
}

TEST(RewardBoundedUntil, ThesisExample36Value) {
  // P(idle, idle U^[0,2]_[0,2000] busy) = 0.15789... (Example 3.6).
  const core::Mrm model = models::make_wavelan();
  const auto values = until_probabilities(model, model.labels().states_with("idle"),
                                          model.labels().states_with("busy"),
                                          logic::up_to(2.0), logic::up_to(2000.0), tight(1e-19));
  const double e3 = 14.25;
  const double a = (2000.0 - 0.42545) / 1319.0;
  const double b = (2000.0 - 0.36195) / 1319.0;
  const double expected = 1.5 / e3 * (1.0 - std::exp(-e3 * a)) +
                          0.75 / e3 * (1.0 - std::exp(-e3 * b));
  EXPECT_NEAR(values[models::kWavelanIdle].probability, expected, 1e-6);
  EXPECT_NEAR(expected, 0.15789, 1e-4);  // the thesis's rounded value
}

TEST(RewardBoundedUntil, DeadStatesScoreZero) {
  const core::Mrm model = models::make_wavelan();
  const auto values = until_probabilities(model, model.labels().states_with("idle"),
                                          model.labels().states_with("busy"),
                                          logic::up_to(2.0), logic::up_to(2000.0), tight(1e-19));
  EXPECT_DOUBLE_EQ(values[models::kWavelanOff].probability, 0.0);
  EXPECT_DOUBLE_EQ(values[models::kWavelanSleep].probability, 0.0);
  // A Psi start is absorbing in the transformed model: probability ~1 up to
  // the truncated Poisson tail.
  EXPECT_NEAR(values[models::kWavelanReceive].probability, 1.0, 1e-9);
}

TEST(RewardBoundedUntil, ZeroTimeBoundIsPsiIndicator) {
  const core::Mrm model = models::make_wavelan();
  const auto values = until_probabilities(model, std::vector<bool>(5, true),
                                          model.labels().states_with("busy"),
                                          logic::up_to(0.0), logic::up_to(100.0), tight());
  EXPECT_DOUBLE_EQ(values[models::kWavelanReceive].probability, 1.0);
  EXPECT_DOUBLE_EQ(values[models::kWavelanIdle].probability, 0.0);
}

TEST(RewardBoundedUntil, HugeRewardBoundMatchesTimeBoundedUntil) {
  // With r effectively unbounded the P2 engine must agree with the P1
  // transient-analysis path.
  const core::Mrm model = models::make_wavelan();
  const auto idle = model.labels().states_with("idle");
  const auto busy = model.labels().states_with("busy");
  const double t = 0.4;
  const auto p2 = until_probabilities(model, idle, busy, logic::up_to(t),
                                      logic::up_to(1e7), tight(1e-19));
  const auto p1 = until_probabilities(model, idle, busy, logic::up_to(t), Interval{});
  EXPECT_NEAR(p2[models::kWavelanIdle].probability, p1[models::kWavelanIdle].probability,
              1e-7);
}

TEST(RewardBoundedUntil, ErrorBoundShrinksWithW) {
  const core::Mrm model = models::make_wavelan();
  const auto idle = model.labels().states_with("idle");
  const auto busy = model.labels().states_with("busy");
  double previous_error = 1.0;
  double reference = -1.0;
  for (double w : {1e-14, 1e-16, 1e-18}) {
    const auto values = until_probabilities(model, idle, busy, logic::up_to(1.0),
                                            logic::up_to(2000.0), tight(w));
    const auto& v = values[models::kWavelanIdle];
    EXPECT_LE(v.error_bound, previous_error + 1e-15);
    previous_error = v.error_bound;
    if (reference < 0.0) reference = v.probability;
    // The probability moves by at most the coarser error bound.
    EXPECT_NEAR(v.probability, reference, 1e-6);
  }
}

TEST(RewardBoundedUntil, TruncatedProbabilityIsWithinErrorBoundOfTightValue) {
  const core::Mrm model = models::make_wavelan();
  const auto idle = model.labels().states_with("idle");
  const auto busy = model.labels().states_with("busy");
  const auto coarse = until_probabilities(model, idle, busy, logic::up_to(1.0),
                                          logic::up_to(2000.0), tight(1e-9));
  const auto fine = until_probabilities(model, idle, busy, logic::up_to(1.0),
                                        logic::up_to(2000.0), tight(1e-18));
  const auto& c = coarse[models::kWavelanIdle];
  const auto& f = fine[models::kWavelanIdle];
  EXPECT_LE(c.probability, f.probability + 1e-12);  // truncation only loses mass
  EXPECT_LE(f.probability - c.probability, c.error_bound + 1e-12);
}

TEST(RewardBoundedUntil, PointTimeIntervalMatchesJointDistribution) {
  // tt U^[t,t]_[0,r] psi with huge r equals the plain transient probability
  // of being in a psi state at time t (Theorems 4.2/4.3).
  const double mu = 0.7;
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, mu);
  core::Labeling labels(2);
  labels.add(1, "goal");
  const core::Mrm model(core::Ctmc(rates.build(), std::move(labels)), {0.0, 0.0});
  const double t = 1.4;
  const auto values = until_probabilities(model, std::vector<bool>(2, true),
                                          model.labels().states_with("goal"),
                                          Interval(t, t), logic::up_to(1e6), tight());
  EXPECT_NEAR(values[0].probability, 1.0 - std::exp(-mu * t), 1e-8);
}

TEST(RewardBoundedUntil, PointTimeIntervalAllowsLeavingPsi) {
  // Unlike [0,t], the [t,t] form requires psi AT time t; with a fast return
  // transition the probability is the transient occupancy, not the hitting
  // probability.
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  rates.add(1, 0, 1.0);
  core::Labeling labels(2);
  labels.add(1, "goal");
  const core::Mrm model(core::Ctmc(rates.build(), std::move(labels)),
                        std::vector<double>(2, 0.0));
  const double t = 2.0;
  const auto values = until_probabilities(model, std::vector<bool>(2, true),
                                          model.labels().states_with("goal"),
                                          Interval(t, t), logic::up_to(1e6), tight(1e-16));
  // Two-state symmetric chain: p1(t) = (1 - e^{-2t}) / 2.
  EXPECT_NEAR(values[0].probability, (1.0 - std::exp(-2.0 * t)) / 2.0, 1e-7);
}

TEST(RewardBoundedUntil, PointIntervalRequiresPsiImpliesPhi) {
  const core::Mrm model = models::make_wavelan();
  EXPECT_THROW(until_probabilities(model, model.labels().states_with("idle"),
                                   model.labels().states_with("busy"), Interval(1.0, 1.0),
                                   logic::up_to(10.0), tight()),
               UnsupportedFormulaError);
}

TEST(RewardBoundedUntil, RejectsRewardLowerBounds) {
  const core::Mrm model = models::make_wavelan();
  EXPECT_THROW(until_probabilities(model, std::vector<bool>(5, true),
                                   model.labels().states_with("busy"), logic::up_to(1.0),
                                   Interval(1.0, 2.0), tight()),
               UnsupportedFormulaError);
}

TEST(RewardBoundedUntil, SignatureAggregationDoesNotChangeTheResult) {
  const core::Mrm model = models::make_wavelan();
  const auto idle = model.labels().states_with("idle");
  const auto busy = model.labels().states_with("busy");
  CheckerOptions aggregated = tight(1e-18);
  CheckerOptions per_path = tight(1e-18);
  per_path.uniformization.aggregate_signatures = false;
  const auto a = until_probabilities(model, idle, busy, logic::up_to(1.0),
                                     logic::up_to(2000.0), aggregated);
  const auto b = until_probabilities(model, idle, busy, logic::up_to(1.0),
                                     logic::up_to(2000.0), per_path);
  EXPECT_NEAR(a[models::kWavelanIdle].probability, b[models::kWavelanIdle].probability,
              1e-12);
}

TEST(RewardBoundedUntil, EngineReportsExplorationStatistics) {
  const core::Mrm model = models::make_wavelan();
  std::vector<bool> absorb(5, false);
  const auto idle = model.labels().states_with("idle");
  const auto busy = model.labels().states_with("busy");
  std::vector<bool> dead(5, false);
  for (std::size_t s = 0; s < 5; ++s) {
    absorb[s] = !idle[s] || busy[s];
    dead[s] = !idle[s] && !busy[s];
  }
  numeric::UniformizationUntilEngine engine(core::make_absorbing(model, absorb), busy, dead);
  numeric::PathExplorerOptions options;
  options.truncation_probability = 1e-18;
  const auto result = engine.compute(models::kWavelanIdle, 1.0, 2000.0, options);
  EXPECT_GT(result.paths_stored, 0u);
  EXPECT_GT(result.signature_classes, 0u);
  EXPECT_LE(result.signature_classes, result.paths_stored);
  EXPECT_GT(result.nodes_expanded, result.paths_stored);
  EXPECT_GT(result.max_depth, 1u);
}

TEST(RewardBoundedUntil, NodeBudgetAborts) {
  const core::Mrm model = models::make_wavelan();
  const auto idle = model.labels().states_with("idle");
  const auto busy = model.labels().states_with("busy");
  CheckerOptions options = tight(1e-18);
  options.uniformization.max_nodes = 10;
  EXPECT_THROW(until_probabilities(model, idle, busy, logic::up_to(1.0), logic::up_to(2000.0),
                                   options),
               std::runtime_error);
}

}  // namespace
}  // namespace csrlmrm::checker

// The specification language: lexer/parser and expression evaluation.
#include <gtest/gtest.h>

#include <map>

#include "lang/parser.hpp"

namespace csrlmrm::lang {
namespace {

/// Environment with a fixed set of bindings for expression tests.
class MapEnvironment final : public Environment {
 public:
  explicit MapEnvironment(std::map<std::string, Value> values)
      : values_(std::move(values)) {}
  Value lookup(const std::string& name) const override {
    const auto it = values_.find(name);
    if (it == values_.end()) throw SpecError("unknown identifier '" + name + "'");
    return it->second;
  }

 private:
  std::map<std::string, Value> values_;
};

TEST(LangExpr, ArithmeticPrecedence) {
  MapEnvironment env({});
  EXPECT_DOUBLE_EQ(evaluate_number(parse_expression("1 + 2 * 3"), env), 7.0);
  EXPECT_DOUBLE_EQ(evaluate_number(parse_expression("(1 + 2) * 3"), env), 9.0);
  EXPECT_DOUBLE_EQ(evaluate_number(parse_expression("8 / 2 / 2"), env), 2.0);
  EXPECT_DOUBLE_EQ(evaluate_number(parse_expression("-3 + 1"), env), -2.0);
}

TEST(LangExpr, BooleanConnectivesShortCircuit) {
  MapEnvironment env({});
  EXPECT_TRUE(evaluate_bool(parse_expression("true || (1 / 0 = 1)"), env));
  EXPECT_FALSE(evaluate_bool(parse_expression("false && (1 / 0 = 1)"), env));
}

TEST(LangExpr, ComparisonsAndEquality) {
  MapEnvironment env({{"x", Value::make_number(4)}});
  EXPECT_TRUE(evaluate_bool(parse_expression("x = 4"), env));
  EXPECT_TRUE(evaluate_bool(parse_expression("x != 5"), env));
  EXPECT_TRUE(evaluate_bool(parse_expression("x >= 4 && x < 5"), env));
  EXPECT_FALSE(evaluate_bool(parse_expression("!(x <= 4)"), env));
}

TEST(LangExpr, ConditionalOperator) {
  MapEnvironment env({{"jobs", Value::make_number(0)}});
  EXPECT_DOUBLE_EQ(evaluate_number(parse_expression("jobs = 0 ? 2 : 0"), env), 2.0);
  MapEnvironment busy({{"jobs", Value::make_number(3)}});
  EXPECT_DOUBLE_EQ(evaluate_number(parse_expression("jobs = 0 ? 2 : 0"), busy), 0.0);
}

TEST(LangExpr, TypeErrorsAreReported) {
  MapEnvironment env({});
  EXPECT_THROW(evaluate(parse_expression("1 && 2"), env), SpecError);
  EXPECT_THROW(evaluate(parse_expression("true + 1"), env), SpecError);
  EXPECT_THROW(evaluate(parse_expression("!3"), env), SpecError);
  EXPECT_THROW(evaluate(parse_expression("1 / 0"), env), SpecError);
  EXPECT_THROW(evaluate_number(parse_expression("true"), env), SpecError);
  EXPECT_THROW(evaluate_bool(parse_expression("3"), env), SpecError);
}

TEST(LangExpr, UnknownIdentifierIsReported) {
  MapEnvironment env({});
  EXPECT_THROW(evaluate(parse_expression("ghost"), env), SpecError);
}

TEST(LangParser, ParsesFullSpecification) {
  const ModelSpec spec = parse_spec(R"(
    // an M/M/1/K queue
    const int K = 4;
    const double lambda = 0.8;
    module queue
      jobs : [0 .. K] init 0;
      [] jobs < K -> lambda : (jobs' = jobs + 1) impulse (jobs = 0 ? 2 : 0);
      [] jobs > 0 -> 1.0 : (jobs' = jobs - 1);
    endmodule
    rewards
      jobs = 0 : 1;
      jobs > 0 : 5;
    endrewards
    label "full" = jobs = K;
    label "empty" = jobs = 0;
  )");
  EXPECT_EQ(spec.module_name, "queue");
  ASSERT_EQ(spec.constants.size(), 2u);
  EXPECT_TRUE(spec.constants[0].is_integer);
  ASSERT_EQ(spec.variables.size(), 1u);
  EXPECT_EQ(spec.variables[0].name, "jobs");
  ASSERT_EQ(spec.commands.size(), 2u);
  EXPECT_TRUE(spec.commands[0].impulse != nullptr);
  EXPECT_TRUE(spec.commands[1].impulse == nullptr);
  EXPECT_EQ(spec.state_rewards.size(), 2u);
  ASSERT_EQ(spec.labels.size(), 2u);
  EXPECT_EQ(spec.labels[0].name, "full");
}

TEST(LangParser, MultiVariableUpdates) {
  const ModelSpec spec = parse_spec(R"(
    module pair
      x : [0 .. 1];
      y : [0 .. 1];
      [] x = 0 && y = 0 -> 1.0 : (x' = 1) & (y' = 1);
    endmodule
  )");
  ASSERT_EQ(spec.commands.size(), 1u);
  EXPECT_EQ(spec.commands[0].updates.size(), 2u);
}

TEST(LangParser, ReportsLineNumbers) {
  try {
    parse_spec("const int K = ;\n");
    FAIL() << "expected SpecError";
  } catch (const SpecError& error) {
    EXPECT_NE(std::string(error.what()).find("line 1"), std::string::npos) << error.what();
  }
}

TEST(LangParser, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_spec("module m endmodule"), SpecError);  // no variables
  EXPECT_THROW(parse_spec("module m x : [0 .. 1]; [] true -> 1 : (x' = 1)"), SpecError);
  EXPECT_THROW(parse_spec("label full = true;"), SpecError);  // unquoted label
  EXPECT_THROW(parse_spec("wibble"), SpecError);
  EXPECT_THROW(parse_expression("1 +"), SpecError);
  EXPECT_THROW(parse_expression("(1"), SpecError);
  EXPECT_THROW(parse_expression("1 2"), SpecError);
}

TEST(LangParser, CommentsAndWhitespaceAreIgnored)
{
  const ModelSpec spec = parse_spec(
      "// leading comment\nmodule m\n  x : [0 .. 2]; // trailing\n  [] x < 2 -> 1.0 : "
      "(x' = x + 1);\nendmodule\n");
  EXPECT_EQ(spec.variables.size(), 1u);
}

}  // namespace
}  // namespace csrlmrm::lang

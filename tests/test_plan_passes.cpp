// Pass-level unit tests of the plan compiler: each pass's effect is pinned
// through the Plan's deterministic summary fields, the `plan.*` stats
// counters, and — for transform hoisting — the `omega.shared_cache_*`
// counters of the uniformization layer the shared transformed models feed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "checker/sat.hpp"
#include "logic/parser.hpp"
#include "models/explicit_nmr.hpp"
#include "models/random_mrm.hpp"
#include "models/tmr.hpp"
#include "numeric/conditional.hpp"
#include "obs/stats.hpp"
#include "plan/compiler.hpp"
#include "plan/cost_model.hpp"
#include "plan/executor.hpp"

namespace csrlmrm {
namespace {

std::vector<logic::FormulaPtr> parse_batch(const std::vector<std::string>& texts) {
  std::vector<logic::FormulaPtr> batch;
  for (const auto& text : texts) batch.push_back(logic::parse_formula(text));
  return batch;
}

/// Counter-reading tests need the stats layer armed (the default test
/// process keeps it off); every test leaves the registry clean.
class PlanPasses : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_stats_enabled(true);
    obs::StatsRegistry::global().reset();
    numeric::SharedOmegaCache::global().clear();
  }
  void TearDown() override {
    obs::StatsRegistry::global().reset();
    obs::set_stats_enabled(false);
  }
};

// ---------------------------------------------------------------------------
// CSE pass
// ---------------------------------------------------------------------------

// The Table 5.4-style batch: two thresholds over one time-reward until plus
// the time-only variant. CSE must intern the two label sets once, share the
// entire time-reward solve between the thresholds, and keep exactly one
// transform op for both untils (same M[!Phi v Psi] mask).
TEST_F(PlanPasses, CseDedupCountsPinnedOnTmrBatch) {
  const core::Mrm model = models::make_tmr();
  const auto batch = parse_batch({"P(>0.1)[Sup U[0,100][0,3000] failed]",
                                  "P(>0.5)[Sup U[0,100][0,3000] failed]",
                                  "P(>0.1)[Sup U[0,100] failed]"});
  checker::CheckerOptions options;
  const plan::Plan compiled = plan::compile(model, batch, options);

  // Ops: Sup, failed, transform, until[0,100][0,3000], cmp>0.1, cmp>0.5,
  // until[0,100], cmp>0.1 — eight, not the 15 a per-formula lowering builds.
  EXPECT_EQ(compiled.ops.size(), 8u);
  // Hits: formula 2 re-finds Sup, failed, and the whole solve; formula 3
  // re-finds the two label sets.
  EXPECT_EQ(compiled.cse_hits, 5u);
  EXPECT_EQ(compiled.transforms_hoisted, 1u);  // second until reuses the transform
  // Only the P2-class (time-reward) until is engine-eligible; the time-only
  // variant runs the fixed P1 uniformization path with no engine choice.
  EXPECT_EQ(compiled.engines_pinned, 1u);

  // The same numbers flow into the global counters (what `--stats` reports).
  const auto& registry = obs::StatsRegistry::global();
  EXPECT_EQ(registry.counter("plan.cse.hits"), compiled.cse_hits);
  EXPECT_EQ(registry.counter("plan.ops"), compiled.ops.size());
  EXPECT_EQ(registry.counter("plan.transforms.hoisted"), compiled.transforms_hoisted);
  EXPECT_EQ(registry.counter("plan.engines.pinned"), compiled.engines_pinned);
  EXPECT_EQ(registry.counter("plan.compile.calls"), 1u);

  // The shared until solve is referenced by both compare ops.
  std::size_t shared_solves = 0;
  for (const auto& op : compiled.ops) {
    if (op.kind == plan::OpKind::kUntilSolve && op.uses == 2) ++shared_solves;
  }
  EXPECT_EQ(shared_solves, 1u);
}

TEST_F(PlanPasses, CseOffLowersEveryOccurrenceSeparately) {
  const core::Mrm model = models::make_tmr();
  const auto batch = parse_batch({"P(>0.1)[Sup U[0,100][0,3000] failed]",
                                  "P(>0.5)[Sup U[0,100][0,3000] failed]",
                                  "P(>0.1)[Sup U[0,100] failed]"});
  checker::CheckerOptions options;
  plan::PlanOptions no_cse;
  no_cse.cse = false;
  const plan::Plan compiled = plan::compile(model, batch, options, no_cse);
  EXPECT_EQ(compiled.cse_hits, 0u);
  EXPECT_EQ(obs::StatsRegistry::global().counter("plan.cse.hits"), 0u);
  // More ops than the deduplicated plan, and no solve is shared — the two
  // identical time-reward untils each run their own solve. (Label-set ops
  // legitimately reach uses=2 even here: each feeds its until op and that
  // until's transform op. Transform sharing is the hoisting pass's toggle,
  // not CSE's.)
  const plan::Plan with_cse = plan::compile(model, batch, options);
  EXPECT_GT(compiled.ops.size(), with_cse.ops.size());
  for (const auto& op : compiled.ops) {
    if (op.kind == plan::OpKind::kUntilSolve) EXPECT_LE(op.uses, 1u);
  }
}

// ---------------------------------------------------------------------------
// Transform-hoisting pass
// ---------------------------------------------------------------------------

// Two time-reward untils over the same operand sets at ratio-matched bounds
// ([0,50][0,300] and [0,100][0,600]: same r/t, so their zero-impulse Omega
// thresholds coincide): one hoisted transform, and part of the second
// solve's Omega evaluators (keyed by the transformed model's reward
// coefficients and the canonical threshold) must be served from
// numeric::SharedOmegaCache instead of re-derived. Measured against two
// singleton plans executed from a cold cache, the batch must spend strictly
// fewer misses (= evaluator derivations) and score strictly more hits.
TEST_F(PlanPasses, HoistedTransformSharesOmegaEvaluatorsAcrossSolves) {
  const core::Mrm model = models::make_tmr();  // has impulse rewards
  checker::CheckerOptions options;
  const auto& registry = obs::StatsRegistry::global();

  // Lane 1: each formula compiled and executed alone, cold cache each time —
  // the per-process behavior of two separate mrmcheck invocations.
  std::uint64_t singleton_misses = 0;
  std::uint64_t singleton_hits = 0;
  for (const std::string& text :
       {std::string("P(>0.1)[Sup U[0,50][0,300] failed]"),
        std::string("P(>0.1)[Sup U[0,100][0,600] failed]")}) {
    numeric::SharedOmegaCache::global().clear();
    obs::StatsRegistry::global().reset();
    const plan::Plan single = plan::compile(model, parse_batch({text}), options);
    plan::execute(single, model);
    singleton_misses += registry.counter("omega.shared_cache_misses");
    singleton_hits += registry.counter("omega.shared_cache_hits");
  }

  // Lane 2: the batch through one plan, cold cache once.
  numeric::SharedOmegaCache::global().clear();
  obs::StatsRegistry::global().reset();
  const plan::Plan batch = plan::compile(
      model, parse_batch({"P(>0.1)[Sup U[0,50][0,300] failed]",
                          "P(>0.1)[Sup U[0,100][0,600] failed]"}),
      options);
  EXPECT_EQ(batch.transforms_hoisted, 1u);
  EXPECT_GE(registry.counter("plan.transform_prewarms"), 1u);
  plan::execute(batch, model);
  const std::uint64_t batch_misses = registry.counter("omega.shared_cache_misses");
  const std::uint64_t batch_hits = registry.counter("omega.shared_cache_hits");

  EXPECT_LT(batch_misses, singleton_misses);
  EXPECT_GT(batch_hits, singleton_hits);
}

// ---------------------------------------------------------------------------
// Engine-selection pass (cost model)
// ---------------------------------------------------------------------------

// The compile-time pin must be the decision the runtime auto path records:
// on the TMR bench model the auto cost model picks class-DP with the hybrid
// armed, and a direct check bumps exactly that counter.
TEST_F(PlanPasses, CostModelPinMatchesRuntimeAutoChoiceOnTmr) {
  const core::Mrm model = models::make_tmr();
  const auto batch = parse_batch({"P(>0.1)[Sup U[0,100][0,3000] failed]"});
  checker::CheckerOptions options;
  const plan::Plan compiled = plan::compile(model, batch, options);

  const plan::PlanOp* until = nullptr;
  for (const auto& op : compiled.ops) {
    if (op.kind == plan::OpKind::kUntilSolve) until = &op;
  }
  ASSERT_NE(until, nullptr);
  ASSERT_TRUE(until->engine_known);
  EXPECT_EQ(until->engine_choice.method, checker::UntilMethod::kUniformization);
  EXPECT_EQ(until->engine_choice.engine, checker::UntilEngine::kClassDp);
  EXPECT_TRUE(until->engine_choice.adaptive_hybrid);
  EXPECT_FALSE(until->engine_history_adjusted);

  obs::StatsRegistry::global().reset();
  checker::ModelChecker direct(model, options);
  direct.verdicts(batch[0]);
  const auto& registry = obs::StatsRegistry::global();
  EXPECT_EQ(registry.counter("engine.auto_choice.classdp"), 1u);
  EXPECT_EQ(registry.counter("engine.auto_choice.dfpg"), 0u);
  EXPECT_EQ(registry.counter("engine.auto_choice.discretization"), 0u);
}

// Same regression on the 11-module NMR calibration (Tables 5.5/5.7): more
// states, same verdict — class-DP stays within budget at the table horizons.
TEST_F(PlanPasses, CostModelPinMatchesRuntimeAutoChoiceOnNmr) {
  const core::Mrm model = models::make_tmr(models::chapter5_nmr_config());
  const auto batch = parse_batch({"P(>0.1)[Sup U[0,100][0,3000] failed]"});
  checker::CheckerOptions options;
  const plan::Plan compiled = plan::compile(model, batch, options);
  const plan::PlanOp* until = nullptr;
  for (const auto& op : compiled.ops) {
    if (op.kind == plan::OpKind::kUntilSolve) until = &op;
  }
  ASSERT_NE(until, nullptr);
  ASSERT_TRUE(until->engine_known);
  EXPECT_EQ(until->engine_choice.engine, checker::UntilEngine::kClassDp);
  EXPECT_GT(until->predicted_live, 0u);
  EXPECT_GT(until->predicted_levels, 0u);

  obs::StatsRegistry::global().reset();
  checker::ModelChecker direct(model, options);
  direct.verdicts(batch[0]);
  EXPECT_EQ(obs::StatsRegistry::global().counter("engine.auto_choice.classdp"), 1u);
}

// An impulse-free model with a starved node budget under a degrading policy:
// auto provably skips to discretization, and the prediction must agree.
TEST_F(PlanPasses, CostModelPredictsDiscretizationWhenOverBudget) {
  models::RandomMrmConfig config;
  config.num_states = 6;
  config.impulse_probability = 0.0;
  const core::Mrm model = models::make_random_mrm(7, config);
  checker::CheckerOptions options;
  options.uniformization.max_nodes = 1;  // guaranteed over budget
  options.on_budget_exhausted = checker::BudgetPolicy::kFallbackToDiscretization;
  const plan::EnginePrediction prediction =
      plan::predict_until_engine(model, 10.0, options, plan::CostModelHistory{}, false);
  EXPECT_EQ(prediction.choice.method, checker::UntilMethod::kDiscretization);
  EXPECT_FALSE(prediction.history_adjusted);
  EXPECT_EQ(prediction.choice.method, checker::choose_until_engine(model, 10.0, options).method);
}

// The per-path ablation (aggregate_signatures off) only DFPG implements.
TEST_F(PlanPasses, CostModelFollowsSignatureAblationToDfpg) {
  const core::Mrm model = models::make_tmr();
  checker::CheckerOptions options;
  options.uniformization.aggregate_signatures = false;
  const plan::EnginePrediction prediction =
      plan::predict_until_engine(model, 100.0, options, plan::CostModelHistory{}, false);
  EXPECT_EQ(prediction.choice.method, checker::UntilMethod::kUniformization);
  EXPECT_EQ(prediction.choice.engine, checker::UntilEngine::kDfpg);
}

// Adaptive mode: a fallback-heavy class-DP history demotes the static pick
// to DFPG; a clean or thin history leaves it alone; static mode ignores the
// history entirely.
TEST_F(PlanPasses, AdaptiveHistoryDemotesFallbackHeavyClassDp) {
  const core::Mrm model = models::make_tmr();
  checker::CheckerOptions options;

  plan::CostModelHistory bad;
  bad.auto_classdp = 4;
  bad.classdp_fallbacks = 2;  // half the runs fell back
  const auto demoted = plan::predict_until_engine(model, 100.0, options, bad, true);
  EXPECT_EQ(demoted.choice.engine, checker::UntilEngine::kDfpg);
  EXPECT_TRUE(demoted.history_adjusted);
  EXPECT_NE(demoted.rationale.find("history"), std::string::npos);

  plan::CostModelHistory thin;
  thin.auto_classdp = 3;  // below the 4-run confidence floor
  thin.classdp_fallbacks = 3;
  const auto kept_thin = plan::predict_until_engine(model, 100.0, options, thin, true);
  EXPECT_EQ(kept_thin.choice.engine, checker::UntilEngine::kClassDp);
  EXPECT_FALSE(kept_thin.history_adjusted);

  plan::CostModelHistory clean;
  clean.auto_classdp = 100;
  clean.classdp_fallbacks = 1;
  const auto kept_clean = plan::predict_until_engine(model, 100.0, options, clean, true);
  EXPECT_EQ(kept_clean.choice.engine, checker::UntilEngine::kClassDp);
  EXPECT_FALSE(kept_clean.history_adjusted);

  const auto static_pick = plan::predict_until_engine(model, 100.0, options, bad, false);
  EXPECT_EQ(static_pick.choice.engine, checker::UntilEngine::kClassDp);
  EXPECT_FALSE(static_pick.history_adjusted);
}

// History-adjusted pins reach the plan only under the opt-in flag.
TEST_F(PlanPasses, AdaptiveCostModelIsOptInAtCompileTime) {
  const core::Mrm model = models::make_tmr();
  const auto batch = parse_batch({"P(>0.1)[Sup U[0,100][0,3000] failed]"});
  checker::CheckerOptions options;

  // Seed the registry with the fallback-heavy history the adaptive pass reads.
  obs::counter_add("engine.auto_choice.classdp", 4);
  obs::counter_add("classdp.fallbacks", 2);
  const plan::CostModelHistory history = plan::CostModelHistory::from_global_stats();
  EXPECT_EQ(history.auto_classdp, 4u);
  EXPECT_EQ(history.classdp_fallbacks, 2u);

  plan::PlanOptions adaptive;
  adaptive.adaptive_cost_model = true;
  const plan::Plan adjusted = plan::compile(model, batch, options, adaptive);
  const plan::Plan untouched = plan::compile(model, batch, options);
  bool saw_adjusted = false;
  for (const auto& op : adjusted.ops) {
    if (op.kind == plan::OpKind::kUntilSolve) {
      EXPECT_EQ(op.engine_choice.engine, checker::UntilEngine::kDfpg);
      saw_adjusted = op.engine_history_adjusted;
    }
  }
  EXPECT_TRUE(saw_adjusted);
  for (const auto& op : untouched.ops) {
    if (op.kind == plan::OpKind::kUntilSolve) {
      EXPECT_EQ(op.engine_choice.engine, checker::UntilEngine::kClassDp);
      EXPECT_FALSE(op.engine_history_adjusted);
    }
  }
}

// ---------------------------------------------------------------------------
// Lumping pass
// ---------------------------------------------------------------------------

// The explicit-state NMR collapses from 2^(N+1) states to the N+2 counter
// abstraction; the lumped plan's verdicts must equal the direct checker's on
// the full model (verdict-level, not bitwise — the quotient's numerics
// differ in the last ulps, which is exactly why the pass is opt-in).
TEST_F(PlanPasses, LumpingQuotientPreservesVerdicts) {
  models::TmrConfig config;
  config.num_modules = 4;
  config.variable_failure_rate = true;
  const core::Mrm model = models::make_explicit_nmr(config);
  const auto batch = parse_batch({"S(>0.5) Sup", "P(>0.1)[Sup U[0,10][0,200] failed]",
                                  "R(>=1)[C[0,10]]"});
  checker::CheckerOptions options;
  plan::PlanOptions with_lumping;
  with_lumping.lumping = true;
  const plan::Plan compiled = plan::compile(model, batch, options, with_lumping);
  ASSERT_TRUE(compiled.lumped);
  EXPECT_EQ(compiled.num_states, config.num_modules + 2u);
  EXPECT_EQ(compiled.original_states, model.num_states());
  ASSERT_EQ(compiled.block_of.size(), model.num_states());
  EXPECT_EQ(obs::StatsRegistry::global().counter("plan.lumping.applied"), 1u);

  const plan::PlanResult planned = plan::execute(compiled, model);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE("formula " + std::to_string(i));
    checker::ModelChecker direct(model, options);
    const auto verdicts = direct.verdicts(batch[i]);
    ASSERT_EQ(planned.formulas[i].verdicts.size(), verdicts.size());
    for (std::size_t s = 0; s < verdicts.size(); ++s) {
      EXPECT_EQ(verdicts[s], planned.formulas[i].verdicts[s]) << "state " << s;
    }
  }
}

}  // namespace
}  // namespace csrlmrm

// Tarjan SCC / BSCC detection (Algorithm 4.2), including the thesis's
// Example 3.5 graph.
#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include "linalg/csr_matrix.hpp"

namespace csrlmrm::graph {
namespace {

linalg::CsrMatrix graph_from_edges(std::size_t n,
                                   std::initializer_list<std::pair<int, int>> edges) {
  linalg::CsrBuilder builder(n, n);
  for (const auto& [from, to] : edges) {
    builder.add(static_cast<std::size_t>(from), static_cast<std::size_t>(to), 1.0);
  }
  return builder.build();
}

TEST(Scc, SingleStateWithoutEdgesIsBottom) {
  const auto scc = strongly_connected_components(graph_from_edges(1, {}));
  EXPECT_EQ(scc.component_count, 1u);
  EXPECT_TRUE(scc.is_bottom[0]);
}

TEST(Scc, SelfLoopDoesNotSplitComponent) {
  const auto scc = strongly_connected_components(graph_from_edges(1, {{0, 0}}));
  EXPECT_EQ(scc.component_count, 1u);
  EXPECT_TRUE(scc.is_bottom[0]);
}

TEST(Scc, ChainYieldsSingletonComponents) {
  const auto scc = strongly_connected_components(graph_from_edges(3, {{0, 1}, {1, 2}}));
  EXPECT_EQ(scc.component_count, 3u);
  // Only the final state is bottom.
  EXPECT_FALSE(scc.is_bottom[scc.component_of[0]]);
  EXPECT_FALSE(scc.is_bottom[scc.component_of[1]]);
  EXPECT_TRUE(scc.is_bottom[scc.component_of[2]]);
}

TEST(Scc, CycleIsOneComponent) {
  const auto scc = strongly_connected_components(graph_from_edges(3, {{0, 1}, {1, 2}, {2, 0}}));
  EXPECT_EQ(scc.component_count, 1u);
  EXPECT_TRUE(scc.is_bottom[0]);
}

TEST(Scc, ComponentIdsAreReverseTopological) {
  // 0 -> 1 (two singleton components): the successor must have a smaller id.
  const auto scc = strongly_connected_components(graph_from_edges(2, {{0, 1}}));
  EXPECT_GT(scc.component_of[0], scc.component_of[1]);
}

TEST(Scc, RejectsNonSquareMatrix) {
  linalg::CsrBuilder builder(2, 3);
  EXPECT_THROW(strongly_connected_components(builder.build()), std::invalid_argument);
}

TEST(Bscc, ThesisExample35HasTwoBsccs) {
  // Figure 3.2: s1..s5 (0-based 0..4); B1 = {s3,s4} = {2,3}, B2 = {s5} = {4}.
  // Edges (rates irrelevant for the graph analysis): s1->s2, s2->s1, s2->s3,
  // s1->s5, s3->s4, s4->s3.
  const auto bsccs = bottom_sccs(
      graph_from_edges(5, {{0, 1}, {1, 0}, {1, 2}, {0, 4}, {2, 3}, {3, 2}}));
  ASSERT_EQ(bsccs.size(), 2u);
  EXPECT_EQ(bsccs[0], (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(bsccs[1], (std::vector<std::size_t>{4}));
}

TEST(Bscc, NonBottomCycleIsExcluded) {
  // Cycle {0,1} drains into absorbing 2.
  const auto bsccs = bottom_sccs(graph_from_edges(3, {{0, 1}, {1, 0}, {1, 2}}));
  ASSERT_EQ(bsccs.size(), 1u);
  EXPECT_EQ(bsccs[0], (std::vector<std::size_t>{2}));
}

TEST(Bscc, DisconnectedGraphFindsAllBottoms) {
  // Two separate cycles and one transient chain into the first.
  const auto bsccs =
      bottom_sccs(graph_from_edges(6, {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {4, 5}, {5, 0}}));
  ASSERT_EQ(bsccs.size(), 2u);
  EXPECT_EQ(bsccs[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(bsccs[1], (std::vector<std::size_t>{2, 3}));
}

TEST(Bscc, LongChainDoesNotOverflowTheStack) {
  // 20000-state chain exercises the iterative DFS.
  const std::size_t n = 20000;
  linalg::CsrBuilder builder(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) builder.add(i, i + 1, 1.0);
  const auto bsccs = bottom_sccs(builder.build());
  ASSERT_EQ(bsccs.size(), 1u);
  EXPECT_EQ(bsccs[0], (std::vector<std::size_t>{n - 1}));
}

TEST(Bscc, EveryStateBelongsToExactlyOneComponent) {
  const auto graph =
      graph_from_edges(5, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 3}, {0, 3}});
  const auto scc = strongly_connected_components(graph);
  ASSERT_EQ(scc.component_of.size(), 5u);
  for (const std::size_t c : scc.component_of) EXPECT_LT(c, scc.component_count);
}

}  // namespace
}  // namespace csrlmrm::graph

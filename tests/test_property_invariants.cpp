// Property suites over seeded random MRMs: probability-theoretic invariants
// every engine must satisfy regardless of the model.
#include <gtest/gtest.h>

#include "checker/next.hpp"
#include "checker/steady.hpp"
#include "checker/until.hpp"
#include "core/transform.hpp"
#include "graph/scc.hpp"
#include "linalg/vector_ops.hpp"
#include "models/random_mrm.hpp"
#include "numeric/transient.hpp"

namespace csrlmrm {
namespace {

models::RandomMrmConfig calm_config() {
  // Keep Lambda*t small so the path-enumeration invariant checks stay fast;
  // the cross-validation suite covers denser models.
  models::RandomMrmConfig config;
  config.num_states = 6;
  config.max_rate = 1.0;
  return config;
}

class RandomModelInvariants : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  core::Mrm model_ = models::make_random_mrm(GetParam(), calm_config());
};

TEST_P(RandomModelInvariants, TransientDistributionSumsToOne) {
  for (double t : {0.1, 1.0, 5.0}) {
    const auto p = numeric::transient_distribution_from(model_.rates(), 0, t);
    EXPECT_TRUE(linalg::is_distribution(p, 1e-8)) << "t=" << t;
  }
}

TEST_P(RandomModelInvariants, SteadyStateDistributionSumsToOne) {
  for (core::StateIndex start = 0; start < model_.num_states(); ++start) {
    const auto pi = checker::steady_state_distribution(model_, start);
    EXPECT_TRUE(linalg::is_distribution(pi, 1e-8)) << "start=" << start;
  }
}

TEST_P(RandomModelInvariants, SteadyStateMassConcentratesOnBsccs) {
  const auto bsccs = graph::bottom_sccs(model_.rates().matrix());
  std::vector<bool> in_bottom(model_.num_states(), false);
  for (const auto& component : bsccs) {
    for (const auto s : component) in_bottom[s] = true;
  }
  const auto pi = checker::steady_state_distribution(model_, 0);
  for (core::StateIndex s = 0; s < model_.num_states(); ++s) {
    if (!in_bottom[s]) EXPECT_NEAR(pi[s], 0.0, 1e-10) << "transient state " << s;
  }
}

TEST_P(RandomModelInvariants, SccsPartitionTheStateSpace) {
  const auto scc = graph::strongly_connected_components(model_.rates().matrix());
  std::vector<std::size_t> size(scc.component_count, 0);
  for (const auto c : scc.component_of) {
    ASSERT_LT(c, scc.component_count);
    ++size[c];
  }
  std::size_t total = 0;
  for (const auto s : size) {
    EXPECT_GT(s, 0u);
    total += s;
  }
  EXPECT_EQ(total, model_.num_states());
}

TEST_P(RandomModelInvariants, UnboundedUntilIsAProbabilityAndRespectsMasks) {
  const auto phi = model_.labels().states_with("a");
  auto psi = model_.labels().states_with("b");
  psi[0] = true;  // never vacuous
  const auto p = checker::unbounded_until_probabilities(model_, phi, psi);
  for (core::StateIndex s = 0; s < model_.num_states(); ++s) {
    EXPECT_GE(p[s], 0.0);
    EXPECT_LE(p[s], 1.0);
    if (psi[s]) EXPECT_DOUBLE_EQ(p[s], 1.0);
    if (!psi[s] && !phi[s]) EXPECT_DOUBLE_EQ(p[s], 0.0);
  }
}

TEST_P(RandomModelInvariants, TimeBoundedUntilIsMonotoneInT) {
  std::vector<bool> phi(model_.num_states(), true);
  auto psi = model_.labels().states_with("c");
  psi[model_.num_states() - 1] = true;
  double previous = -1.0;
  for (double t : {0.2, 0.5, 1.0, 2.0}) {
    const auto values =
        checker::until_probabilities(model_, phi, psi, logic::up_to(t), logic::Interval{});
    EXPECT_GE(values[0].probability, previous - 1e-9) << "t=" << t;
    previous = values[0].probability;
  }
}

TEST_P(RandomModelInvariants, RewardBoundedUntilIsMonotoneInR) {
  std::vector<bool> phi(model_.num_states(), true);
  std::vector<bool> psi(model_.num_states(), false);
  psi[1] = true;
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-9;
  double previous = -1.0;
  for (double r : {0.5, 2.0, 5.0, 20.0}) {
    const auto values = checker::until_probabilities(model_, phi, psi, logic::up_to(1.0),
                                                     logic::up_to(r), options);
    EXPECT_GE(values[0].probability, previous - 1e-9) << "r=" << r;
    EXPECT_GE(values[0].probability, 0.0);
    EXPECT_LE(values[0].probability, 1.0 + 1e-9);
    previous = values[0].probability;
  }
}

TEST_P(RandomModelInvariants, RewardBoundedUntilIsBoundedByTimeBoundedUntil) {
  // Adding a reward constraint can only remove paths.
  std::vector<bool> phi(model_.num_states(), true);
  std::vector<bool> psi(model_.num_states(), false);
  psi[2 % model_.num_states()] = true;
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-9;
  const double t = 1.0;
  const auto bounded = checker::until_probabilities(model_, phi, psi, logic::up_to(t),
                                                    logic::up_to(3.0), options);
  const auto free = checker::until_probabilities(model_, phi, psi, logic::up_to(t),
                                                 logic::Interval{});
  for (core::StateIndex s = 0; s < model_.num_states(); ++s) {
    EXPECT_LE(bounded[s].probability, free[s].probability + 1e-9) << "state " << s;
  }
}

TEST_P(RandomModelInvariants, NextProbabilitiesAreSubProbabilities) {
  const auto phi = model_.labels().states_with("a");
  const auto unrestricted = checker::next_probabilities(model_, std::vector<bool>(
                                                            model_.num_states(), true),
                                                        logic::Interval{}, logic::Interval{});
  const auto restricted =
      checker::next_probabilities(model_, phi, logic::Interval{}, logic::Interval{});
  for (core::StateIndex s = 0; s < model_.num_states(); ++s) {
    EXPECT_GE(restricted[s], 0.0);
    EXPECT_LE(restricted[s], unrestricted[s] + 1e-12);
    EXPECT_LE(unrestricted[s], 1.0 + 1e-12);
    if (model_.rates().is_absorbing(s)) EXPECT_DOUBLE_EQ(unrestricted[s], 0.0);
  }
}

TEST_P(RandomModelInvariants, MakeAbsorbingIsIdempotent) {
  const auto mask = model_.labels().states_with("a");
  const core::Mrm once = core::make_absorbing(model_, mask);
  const core::Mrm twice = core::make_absorbing(once, mask);
  for (core::StateIndex s = 0; s < model_.num_states(); ++s) {
    EXPECT_DOUBLE_EQ(once.state_reward(s), twice.state_reward(s));
    EXPECT_DOUBLE_EQ(once.rates().exit_rate(s), twice.rates().exit_rate(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelInvariants, ::testing::Range(1u, 21u));

}  // namespace
}  // namespace csrlmrm

// State-space construction from specifications, cross-checked against the
// hand-built C++ models.
#include <gtest/gtest.h>

#include "checker/sat.hpp"
#include "core/lumping.hpp"
#include "lang/builder.hpp"
#include "logic/parser.hpp"
#include "models/mm1k.hpp"
#include "models/tmr.hpp"

namespace csrlmrm::lang {
namespace {

constexpr const char* kQueueSpec = R"(
  const int K = 4;
  const double lambda = 0.8;
  const double mu = 1.0;
  module queue
    jobs : [0 .. K] init 0;
    [] jobs < K -> lambda : (jobs' = jobs + 1) impulse (jobs = 0 ? 2 : 0);
    [] jobs > 0 -> mu : (jobs' = jobs - 1);
  endmodule
  rewards
    jobs = 0 : 1;
    jobs > 0 : 5;
  endrewards
  label "full" = jobs = K;
  label "empty" = jobs = 0;
  label "busy" = jobs > 0;
)";

TEST(LangBuilder, QueueSpecMatchesHandBuiltModel) {
  const BuiltModel built = build_model_from_text(kQueueSpec);
  const core::Mrm reference = models::make_mm1k({4, 0.8, 1.0, 1.0, 5.0, 2.0});
  ASSERT_TRUE(built.model.has_value());
  const core::Mrm& model = *built.model;
  ASSERT_EQ(model.num_states(), reference.num_states());
  // BFS order from jobs=0 coincides with the jobs count here.
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    EXPECT_DOUBLE_EQ(model.state_reward(s), reference.state_reward(s)) << "state " << s;
    for (core::StateIndex s2 = 0; s2 < model.num_states(); ++s2) {
      EXPECT_DOUBLE_EQ(model.rates().rate(s, s2), reference.rates().rate(s, s2))
          << s << "->" << s2;
      EXPECT_DOUBLE_EQ(model.impulse_reward(s, s2), reference.impulse_reward(s, s2))
          << s << "->" << s2;
    }
  }
  EXPECT_TRUE(model.labels().has(0, "empty"));
  EXPECT_TRUE(model.labels().has(4, "full"));
  EXPECT_TRUE(model.labels().has(2, "busy"));
}

TEST(LangBuilder, ValuationBookkeeping) {
  const BuiltModel built = build_model_from_text(kQueueSpec);
  EXPECT_EQ(built.variable_names, std::vector<std::string>{"jobs"});
  EXPECT_EQ(built.initial_state, 0u);
  EXPECT_EQ(built.state_of({3}), 3u);
  EXPECT_EQ(built.state_of({99}), built.valuations.size());  // unreachable
}

TEST(LangBuilder, TmrSpecMatchesCounterModel) {
  // The chapter-5 TMR system written in the language (variable rates).
  const BuiltModel built = build_model_from_text(R"(
    const int N = 3;
    module tmr
      failed : [0 .. N] init 0;
      voter : [0 .. 1] init 0;
      [] voter = 0 && failed < N -> (N - failed) * 0.0004 : (failed' = failed + 1);
      [] voter = 0 && failed > 0 -> 0.05 : (failed' = failed - 1) impulse 2.5;
      [] voter = 0 -> 0.0001 : (voter' = 1);
      [] voter = 1 -> 0.06 : (voter' = 0) & (failed' = 0) impulse 5;
    endmodule
    rewards
      voter = 0 : 8 + 2 * failed;
      voter = 1 : 16;
    endrewards
    label "allUp" = failed = 0 && voter = 0;
    label "Sup" = voter = 0 && N - failed >= 2;
    label "failed" = voter = 1 || N - failed < 2;
  )");
  models::TmrConfig config;
  config.variable_failure_rate = true;
  const core::Mrm reference = models::make_tmr(config);
  const core::Mrm& model = *built.model;
  // The spec keeps one voter-down state per failed count (8 states); they
  // are interchangeable, so lumping recovers the 5-state counter model.
  EXPECT_EQ(model.num_states(), 8u);
  EXPECT_EQ(core::lump(model).num_states(), reference.num_states());

  // Compare through the checker (state orders differ).
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-11;
  checker::ModelChecker spec_checker(model, options);
  checker::ModelChecker reference_checker(reference, options);
  const auto formula = logic::parse_formula("P(>0.1)[Sup U[0,50][0,3000] failed]");
  const auto spec_values = spec_checker.path_probabilities(formula);
  const auto reference_values = reference_checker.path_probabilities(formula);
  EXPECT_NEAR(spec_values[built.state_of({0, 0})].probability,
              reference_values[0].probability, 1e-12);
}

TEST(LangBuilder, VoterDownStatesAreDistinguishedByMask) {
  // Unlike the counter abstraction, the spec above keeps (failed, voter=1)
  // states separate per failed count.
  const BuiltModel built = build_model_from_text(R"(
    module m
      x : [0 .. 2];
      [] x < 2 -> 1.0 : (x' = x + 1);
      [] x = 2 -> 1.0 : (x' = 0);
    endmodule
  )");
  EXPECT_EQ(built.model->num_states(), 3u);
}

TEST(LangBuilder, UnreachableValuationsAreNotBuilt) {
  const BuiltModel built = build_model_from_text(R"(
    module m
      x : [0 .. 100] init 5;
      [] x > 4 && x < 7 -> 1.0 : (x' = x + 1);
    endmodule
  )");
  // Only 5, 6, 7 are reachable.
  EXPECT_EQ(built.model->num_states(), 3u);
}

TEST(LangBuilder, ParallelCommandsAggregateRates) {
  const BuiltModel built = build_model_from_text(R"(
    module m
      x : [0 .. 1];
      [] x = 0 -> 0.5 : (x' = 1);
      [] x = 0 -> 0.25 : (x' = 1);
    endmodule
  )");
  EXPECT_DOUBLE_EQ(built.model->rates().rate(0, 1), 0.75);
}

TEST(LangBuilder, ErrorsAreDiagnosed) {
  // Update escapes the declared range.
  EXPECT_THROW(build_model_from_text(R"(
    module m
      x : [0 .. 1];
      [] true -> 1.0 : (x' = x + 1);
    endmodule
  )"),
               SpecError);
  // Impulse on a self-loop.
  EXPECT_THROW(build_model_from_text(R"(
    module m
      x : [0 .. 1];
      [] true -> 1.0 : (x' = x) impulse 1;
    endmodule
  )"),
               SpecError);
  // Conflicting impulses on the same transition.
  EXPECT_THROW(build_model_from_text(R"(
    module m
      x : [0 .. 1];
      [] x = 0 -> 1.0 : (x' = 1) impulse 1;
      [] x = 0 -> 2.0 : (x' = 1) impulse 2;
    endmodule
  )"),
               SpecError);
  // Unknown identifier in a guard.
  EXPECT_THROW(build_model_from_text(R"(
    module m
      x : [0 .. 1];
      [] ghost = 0 -> 1.0 : (x' = 1);
    endmodule
  )"),
               SpecError);
  // Same variable assigned twice in one command.
  EXPECT_THROW(build_model_from_text(R"(
    module m
      x : [0 .. 3];
      [] x = 0 -> 1.0 : (x' = 1) & (x' = 2);
    endmodule
  )"),
               SpecError);
  // Non-integral update.
  EXPECT_THROW(build_model_from_text(R"(
    module m
      x : [0 .. 3];
      [] x = 0 -> 1.0 : (x' = 0.5);
    endmodule
  )"),
               SpecError);
}

TEST(LangBuilder, StateSpaceLimitIsEnforced) {
  BuildOptions options;
  options.max_states = 10;
  EXPECT_THROW(build_model_from_text(R"(
    module m
      x : [0 .. 1000];
      [] x < 1000 -> 1.0 : (x' = x + 1);
    endmodule
  )",
                                     options),
               SpecError);
}

TEST(LangBuilder, ZeroRateCommandsAreSkipped) {
  const BuiltModel built = build_model_from_text(R"(
    const double off = 0;
    module m
      x : [0 .. 1];
      [] x = 0 -> off : (x' = 1);
    endmodule
  )");
  EXPECT_EQ(built.model->num_states(), 1u);  // target never explored
  EXPECT_TRUE(built.model->rates().is_absorbing(0));
}

}  // namespace
}  // namespace csrlmrm::lang

// The bundled example models: structure, labels, and reward conventions.
#include <gtest/gtest.h>

#include <cmath>

#include "models/cellphone.hpp"
#include "models/random_mrm.hpp"
#include "models/tmr.hpp"
#include "models/wavelan.hpp"

namespace csrlmrm::models {
namespace {

TEST(WavelanModel, HasFiveStatesWithExpectedLabels) {
  const core::Mrm model = make_wavelan();
  ASSERT_EQ(model.num_states(), 5u);
  EXPECT_TRUE(model.labels().has(kWavelanOff, "off"));
  EXPECT_TRUE(model.labels().has(kWavelanReceive, "busy"));
  EXPECT_TRUE(model.labels().has(kWavelanTransmit, "busy"));
  EXPECT_FALSE(model.labels().has(kWavelanIdle, "busy"));
}

TEST(TmrModel, DefaultTmrMatchesTable52Structure) {
  const core::Mrm model = make_tmr(TmrConfig{});
  ASSERT_EQ(model.num_states(), 5u);  // 0..3 failed modules + voter down
  const auto vdown = tmr_voter_down_state(3);
  // Table 5.2 rates.
  EXPECT_DOUBLE_EQ(model.rates().rate(0, 1), 0.0004);
  EXPECT_DOUBLE_EQ(model.rates().rate(1, 0), 0.05);
  EXPECT_DOUBLE_EQ(model.rates().rate(0, vdown), 0.0001);
  EXPECT_DOUBLE_EQ(model.rates().rate(vdown, 0), 0.06);
}

TEST(TmrModel, LabelsFollowWorkingModuleCount) {
  const core::Mrm model = make_tmr(TmrConfig{});
  EXPECT_TRUE(model.labels().has(0, "3up"));
  EXPECT_TRUE(model.labels().has(0, "allUp"));
  EXPECT_TRUE(model.labels().has(0, "Sup"));
  EXPECT_TRUE(model.labels().has(1, "2up"));
  EXPECT_TRUE(model.labels().has(1, "Sup"));
  EXPECT_TRUE(model.labels().has(2, "1up"));
  EXPECT_TRUE(model.labels().has(2, "failed"));  // fewer than 2 working
  EXPECT_TRUE(model.labels().has(3, "0up"));
  EXPECT_TRUE(model.labels().has(3, "failed"));
  EXPECT_TRUE(model.labels().has(tmr_voter_down_state(3), "vdown"));
  EXPECT_TRUE(model.labels().has(tmr_voter_down_state(3), "failed"));
}

TEST(TmrModel, VariableModeScalesFailureRateWithWorkingModules) {
  TmrConfig config;
  config.variable_failure_rate = true;
  const core::Mrm model = make_tmr(config);
  EXPECT_DOUBLE_EQ(model.rates().rate(0, 1), 3 * 0.0004);  // Table 5.6
  EXPECT_DOUBLE_EQ(model.rates().rate(1, 2), 2 * 0.0004);
  EXPECT_DOUBLE_EQ(model.rates().rate(2, 3), 1 * 0.0004);
}

TEST(TmrModel, RepairsCarryImpulseRewards) {
  const core::Mrm model = make_tmr(TmrConfig{});
  EXPECT_DOUBLE_EQ(model.impulse_reward(1, 0), 2.5);
  EXPECT_DOUBLE_EQ(model.impulse_reward(tmr_voter_down_state(3), 0), 5.0);
  EXPECT_DOUBLE_EQ(model.impulse_reward(0, 1), 0.0);  // failures are free
}

TEST(TmrModel, RewardsRiseWithDegradation) {
  // The Tables 5.3/5.4 calibration: rho(k failed) = 8 + 2k.
  const core::Mrm model = make_tmr(TmrConfig{});
  EXPECT_DOUBLE_EQ(model.state_reward(0), 8.0);
  EXPECT_DOUBLE_EQ(model.state_reward(1), 10.0);
  EXPECT_DOUBLE_EQ(model.state_reward(2), 12.0);
  EXPECT_DOUBLE_EQ(model.state_reward(3), 14.0);
  EXPECT_DOUBLE_EQ(model.state_reward(tmr_voter_down_state(3)), 16.0);
}

TEST(TmrModel, Chapter5NmrConfigMatchesItsCalibration) {
  const core::Mrm model = make_tmr(chapter5_nmr_config());
  ASSERT_EQ(model.num_states(), 13u);
  EXPECT_DOUBLE_EQ(model.state_reward(0), 24.0);
  EXPECT_DOUBLE_EQ(model.state_reward(11), 35.0);
  EXPECT_DOUBLE_EQ(model.state_reward(tmr_voter_down_state(11)), 37.0);
  EXPECT_DOUBLE_EQ(model.impulse_reward(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.impulse_reward(tmr_voter_down_state(11), 0), 2.0);
  EXPECT_DOUBLE_EQ(make_tmr(chapter5_nmr_config(true)).rates().rate(0, 1), 11 * 0.0004);
}

TEST(TmrModel, ElevenModuleVariantHasThirteenStates) {
  TmrConfig config;
  config.num_modules = 11;
  const core::Mrm model = make_tmr(config);
  ASSERT_EQ(model.num_states(), 13u);
  EXPECT_TRUE(model.labels().has(0, "allUp"));
  EXPECT_TRUE(model.labels().has(0, "11up"));
  EXPECT_TRUE(model.labels().has(10, "1up"));
  EXPECT_TRUE(model.labels().has(10, "failed"));
  // The all-failed state can still lose its voter (index 12 = voter-down)
  // and be repaired, but has no further module-failure transition.
  EXPECT_DOUBLE_EQ(model.rates().rate(11, tmr_voter_down_state(11)), 0.0001);
  EXPECT_DOUBLE_EQ(model.rates().rate(11, 10), 0.05);
  EXPECT_DOUBLE_EQ(model.rates().exit_rate(11), 0.05 + 0.0001);
}

TEST(TmrModel, RejectsZeroModules) {
  TmrConfig config;
  config.num_modules = 0;
  EXPECT_THROW(make_tmr(config), std::invalid_argument);
}

TEST(CellphoneModel, ThreeStatesSatisfyIdleOrDoze) {
  const core::Mrm model = make_cellphone();
  const auto idle = model.labels().states_with("Call_Idle");
  const auto doze = model.labels().states_with("Doze");
  int count = 0;
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    if (idle[s] || doze[s]) ++count;
  }
  // Table 5.1 setup: the transformed model has 3 transient states.
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(model.has_impulse_rewards());
}

TEST(CellphoneModel, RewardsAreIntegral) {
  const core::Mrm model = make_cellphone();
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    const double r = model.state_reward(s);
    EXPECT_DOUBLE_EQ(r, std::round(r)) << "state " << s;
  }
}

TEST(RandomMrm, IsDeterministicPerSeed) {
  const core::Mrm a = make_random_mrm(7);
  const core::Mrm b = make_random_mrm(7);
  ASSERT_EQ(a.num_states(), b.num_states());
  for (core::StateIndex s = 0; s < a.num_states(); ++s) {
    EXPECT_DOUBLE_EQ(a.state_reward(s), b.state_reward(s));
    for (core::StateIndex s2 = 0; s2 < a.num_states(); ++s2) {
      EXPECT_DOUBLE_EQ(a.rates().rate(s, s2), b.rates().rate(s, s2));
      EXPECT_DOUBLE_EQ(a.impulse_reward(s, s2), b.impulse_reward(s, s2));
    }
  }
}

TEST(RandomMrm, DifferentSeedsDiffer) {
  const core::Mrm a = make_random_mrm(1);
  const core::Mrm b = make_random_mrm(2);
  bool any_difference = false;
  for (core::StateIndex s = 0; s < a.num_states() && !any_difference; ++s) {
    for (core::StateIndex s2 = 0; s2 < a.num_states(); ++s2) {
      if (a.rates().rate(s, s2) != b.rates().rate(s, s2)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomMrm, RespectsRewardGridConventions) {
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const core::Mrm model = make_random_mrm(seed);
    for (core::StateIndex s = 0; s < model.num_states(); ++s) {
      EXPECT_DOUBLE_EQ(model.state_reward(s), std::round(model.state_reward(s)));
      for (const auto& e : model.impulse_rewards().row(s)) {
        const double quarters = e.value * 4.0;
        EXPECT_DOUBLE_EQ(quarters, std::round(quarters));
        EXPECT_GT(model.rates().rate(s, e.col), 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace csrlmrm::models

// The error-aware result layer: rigorous intervals and three-valued
// threshold comparisons (checker/verdict.hpp).
#include "checker/verdict.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace csrlmrm::checker {
namespace {

TEST(ProbabilityBound, PointIntervalHasZeroWidth) {
  const auto bound = ProbabilityBound::point(0.25);
  EXPECT_DOUBLE_EQ(bound.lower, 0.25);
  EXPECT_DOUBLE_EQ(bound.upper, 0.25);
  EXPECT_DOUBLE_EQ(bound.width(), 0.0);
  EXPECT_TRUE(bound.contains(0.25));
  EXPECT_FALSE(bound.contains(0.250001));
}

TEST(ProbabilityBound, FromPointErrorClampsToUnitInterval) {
  const auto one_sided = ProbabilityBound::from_point_error(0.9, 0.0, 0.3);
  EXPECT_DOUBLE_EQ(one_sided.lower, 0.9);
  EXPECT_DOUBLE_EQ(one_sided.upper, 1.0);  // 1.2 clamped

  const auto two_sided = ProbabilityBound::from_point_error(0.05, 0.1, 0.1);
  EXPECT_DOUBLE_EQ(two_sided.lower, 0.0);  // -0.05 clamped
  EXPECT_DOUBLE_EQ(two_sided.upper, 0.15);
}

TEST(ProbabilityBound, TruncatingEnginesAreOneSided) {
  // Fox-Glynn / DFPG truncation only loses mass: the truth lies above the
  // computed value.
  const auto bound = ProbabilityBound::from_point_error(0.4, 0.0, 1e-3);
  EXPECT_DOUBLE_EQ(bound.lower, 0.4);
  EXPECT_DOUBLE_EQ(bound.upper, 0.401);
}

TEST(ProbabilityBound, OverlapsAndHull) {
  const ProbabilityBound a{0.2, 0.5};
  const ProbabilityBound b{0.4, 0.7};
  const ProbabilityBound c{0.6, 0.9};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
  const auto hull = a.hull(c);
  EXPECT_DOUBLE_EQ(hull.lower, 0.2);
  EXPECT_DOUBLE_EQ(hull.upper, 0.9);
  // Touching endpoints count as overlapping (closed intervals).
  const ProbabilityBound left{0.0, 0.5};
  const ProbabilityBound right{0.5, 1.0};
  EXPECT_TRUE(left.overlaps(right));
}

TEST(CompareBound, PointValueReducesToTwoValuedComparison) {
  const auto p = ProbabilityBound::point(0.5);
  EXPECT_EQ(compare_bound(p, logic::Comparison::kGreaterEqual, 0.5), Verdict::kSat);
  EXPECT_EQ(compare_bound(p, logic::Comparison::kGreater, 0.5), Verdict::kUnsat);
  EXPECT_EQ(compare_bound(p, logic::Comparison::kLessEqual, 0.5), Verdict::kSat);
  EXPECT_EQ(compare_bound(p, logic::Comparison::kLess, 0.5), Verdict::kUnsat);
  EXPECT_EQ(compare_bound(p, logic::Comparison::kGreater, 0.4), Verdict::kSat);
  EXPECT_EQ(compare_bound(p, logic::Comparison::kLess, 0.4), Verdict::kUnsat);
}

TEST(CompareBound, StraddlingIntervalIsUnknown) {
  const ProbabilityBound value{0.45, 0.55};
  for (const auto op : {logic::Comparison::kLess, logic::Comparison::kLessEqual,
                        logic::Comparison::kGreater, logic::Comparison::kGreaterEqual}) {
    EXPECT_EQ(compare_bound(value, op, 0.5), Verdict::kUnknown) << logic::to_string(op);
  }
}

TEST(CompareBound, DecidedWhenThresholdOutsideTheInterval) {
  const ProbabilityBound value{0.45, 0.55};
  EXPECT_EQ(compare_bound(value, logic::Comparison::kGreater, 0.4), Verdict::kSat);
  EXPECT_EQ(compare_bound(value, logic::Comparison::kGreater, 0.6), Verdict::kUnsat);
  EXPECT_EQ(compare_bound(value, logic::Comparison::kLess, 0.6), Verdict::kSat);
  EXPECT_EQ(compare_bound(value, logic::Comparison::kLess, 0.4), Verdict::kUnsat);
}

TEST(CompareBound, ThresholdAtAnEndpointRespectsStrictness) {
  const ProbabilityBound value{0.45, 0.55};
  // Every value in [0.45, 0.55] is >= 0.45, so the verdict is decided even
  // though the threshold touches the interval.
  EXPECT_EQ(compare_bound(value, logic::Comparison::kGreaterEqual, 0.45), Verdict::kSat);
  // But "strictly greater than 0.45" fails exactly at the lower endpoint.
  EXPECT_EQ(compare_bound(value, logic::Comparison::kGreater, 0.45), Verdict::kUnknown);
  EXPECT_EQ(compare_bound(value, logic::Comparison::kLessEqual, 0.55), Verdict::kSat);
  EXPECT_EQ(compare_bound(value, logic::Comparison::kLess, 0.55), Verdict::kUnknown);
}

TEST(CompareBound, InfiniteRewardValuesCompare) {
  // Reachability rewards may be +infinity (target not almost surely hit).
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(compare_bound(ProbabilityBound::point(inf), logic::Comparison::kGreater, 1e12),
            Verdict::kSat);
  EXPECT_EQ(compare_bound(ProbabilityBound{3.0, inf}, logic::Comparison::kLess, 10.0),
            Verdict::kUnknown);
}

TEST(Verdict, PrintableForms) {
  EXPECT_EQ(to_string(Verdict::kSat), "SAT");
  EXPECT_EQ(to_string(Verdict::kUnsat), "UNSAT");
  EXPECT_EQ(to_string(Verdict::kUnknown), "UNKNOWN");
  EXPECT_EQ(ProbabilityBound::point(1.0).to_string().front(), '[');
}

}  // namespace
}  // namespace csrlmrm::checker

// CSRL lexer + parser over the appendix grammar.
#include "logic/parser.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace csrlmrm::logic {
namespace {

TEST(Lexer, TokenizesOperatorsAndWords) {
  const auto tokens = tokenize("P(>=0.3) [a U[0,3][0,23] b]");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "P");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(Lexer, ReadsScientificNotation) {
  const auto tokens = tokenize("1.5e-3");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(tokens[0].value, 1.5e-3);
}

TEST(Lexer, ReportsColumnOfBadCharacter) {
  try {
    tokenize("ab @cd");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.column(), 4u);
  }
}

TEST(Lexer, RejectsSingleAmpersandAndPipe) {
  EXPECT_THROW(tokenize("a & b"), ParseError);
  EXPECT_THROW(tokenize("a | b"), ParseError);
}

TEST(Parser, ParsesAtomsAndConstants) {
  EXPECT_EQ(parse_formula("TT")->kind, FormulaKind::kTrue);
  EXPECT_EQ(parse_formula("tt")->kind, FormulaKind::kTrue);
  EXPECT_EQ(parse_formula("FF")->kind, FormulaKind::kFalse);
  const auto atom = parse_formula("busy");
  ASSERT_EQ(atom->kind, FormulaKind::kAtomic);
  EXPECT_EQ(static_cast<const AtomicFormula&>(*atom).name, "busy");
}

TEST(Parser, BooleanPrecedenceNotOverAndOverOr) {
  // !a && b || c parses as ((!a && b) || c).
  const auto f = parse_formula("!a && b || c");
  ASSERT_EQ(f->kind, FormulaKind::kOr);
  const auto& orf = static_cast<const OrFormula&>(*f);
  ASSERT_EQ(orf.lhs->kind, FormulaKind::kAnd);
  EXPECT_EQ(orf.rhs->kind, FormulaKind::kAtomic);
  const auto& andf = static_cast<const AndFormula&>(*orf.lhs);
  EXPECT_EQ(andf.lhs->kind, FormulaKind::kNot);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const auto f = parse_formula("!(a || b)");
  ASSERT_EQ(f->kind, FormulaKind::kNot);
  EXPECT_EQ(static_cast<const NotFormula&>(*f).operand->kind, FormulaKind::kOr);
}

TEST(Parser, ParsesAppendixExampleFormula) {
  // "a b-state can be reached with probability at least 0.3 by at most 3
  // time-units along a-states accumulating costs at most 23".
  const auto f = parse_formula("P(>= 0.3) [a U [0,3][0,23] b]");
  ASSERT_EQ(f->kind, FormulaKind::kProbUntil);
  const auto& u = static_cast<const ProbUntilFormula&>(*f);
  EXPECT_EQ(u.op, Comparison::kGreaterEqual);
  EXPECT_DOUBLE_EQ(u.bound, 0.3);
  EXPECT_EQ(u.time_bound, Interval(0.0, 3.0));
  EXPECT_EQ(u.reward_bound, Interval(0.0, 23.0));
  EXPECT_EQ(u.lhs->kind, FormulaKind::kAtomic);
  EXPECT_EQ(u.rhs->kind, FormulaKind::kAtomic);
}

TEST(Parser, OmittedBoundsAreTrivial) {
  const auto f = parse_formula("P(<0.5)[a U b]");
  const auto& u = static_cast<const ProbUntilFormula&>(*f);
  EXPECT_TRUE(u.time_bound.is_trivial());
  EXPECT_TRUE(u.reward_bound.is_trivial());
}

TEST(Parser, SingleIntervalIsTimeBound) {
  const auto f = parse_formula("P(<0.5)[a U[0,10] b]");
  const auto& u = static_cast<const ProbUntilFormula&>(*f);
  EXPECT_EQ(u.time_bound, Interval(0.0, 10.0));
  EXPECT_TRUE(u.reward_bound.is_trivial());
}

TEST(Parser, TildeMeansInfinity) {
  const auto f = parse_formula("P(>0.1)[a U[0,~][0,5] b]");
  const auto& u = static_cast<const ProbUntilFormula&>(*f);
  EXPECT_TRUE(u.time_bound.is_upper_unbounded());
  EXPECT_DOUBLE_EQ(u.reward_bound.upper(), 5.0);
}

TEST(Parser, ParsesNextWithBothBounds) {
  const auto f = parse_formula("P(>0.8)[X[0,10][0,50] sleep]");
  ASSERT_EQ(f->kind, FormulaKind::kProbNext);
  const auto& x = static_cast<const ProbNextFormula&>(*f);
  EXPECT_EQ(x.time_bound, Interval(0.0, 10.0));
  EXPECT_EQ(x.reward_bound, Interval(0.0, 50.0));
  EXPECT_EQ(x.operand->kind, FormulaKind::kAtomic);
}

TEST(Parser, ParsesSteadyState) {
  const auto f = parse_formula("S(>0.5) busy");
  ASSERT_EQ(f->kind, FormulaKind::kSteady);
  const auto& s = static_cast<const SteadyFormula&>(*f);
  EXPECT_EQ(s.op, Comparison::kGreater);
  EXPECT_DOUBLE_EQ(s.bound, 0.5);
}

TEST(Parser, SteadyBindsToUnaryOperand) {
  const auto f = parse_formula("S(>0.5)(a || b)");
  const auto& s = static_cast<const SteadyFormula&>(*f);
  EXPECT_EQ(s.operand->kind, FormulaKind::kOr);
}

TEST(Parser, NestedProbabilityOperators) {
  const auto f = parse_formula("P(>0.8)[X (P(>0.5)[X[0,10][0,50] sleep])]");
  ASSERT_EQ(f->kind, FormulaKind::kProbNext);
  const auto& outer = static_cast<const ProbNextFormula&>(*f);
  EXPECT_EQ(outer.operand->kind, FormulaKind::kProbNext);
}

TEST(Parser, SupLikeIdentifiersAreNotKeywords) {
  // "Sup" begins with 'S' but must parse as an atomic proposition.
  const auto f = parse_formula("P(>0.1)[Sup U[0,500][0,3000] failed]");
  const auto& u = static_cast<const ProbUntilFormula&>(*f);
  EXPECT_EQ(static_cast<const AtomicFormula&>(*u.lhs).name, "Sup");
}

TEST(Parser, AtomNamedXCanBeUntilOperand) {
  // A leading X followed by U is an atom, not the next operator.
  const auto f = parse_formula("P(>0.1)[X U b]");
  ASSERT_EQ(f->kind, FormulaKind::kProbUntil);
  const auto& u = static_cast<const ProbUntilFormula&>(*f);
  EXPECT_EQ(static_cast<const AtomicFormula&>(*u.lhs).name, "X");
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse_formula(""), ParseError);
  EXPECT_THROW(parse_formula("a ||"), ParseError);
  EXPECT_THROW(parse_formula("(a"), ParseError);
  EXPECT_THROW(parse_formula("P(>0.5) a"), ParseError);          // missing [...]
  EXPECT_THROW(parse_formula("P(>0.5)[a b]"), ParseError);       // missing U
  EXPECT_THROW(parse_formula("P(>1.5)[a U b]"), ParseError);     // probability > 1
  EXPECT_THROW(parse_formula("P(=0.5)[a U b]"), ParseError);     // bad comparison
  EXPECT_THROW(parse_formula("P(>0.5)[a U[3,1] b]"), ParseError);  // empty interval
  EXPECT_THROW(parse_formula("a b"), ParseError);                // trailing junk
}

TEST(Parser, ComparisonOperatorsAllParse) {
  EXPECT_EQ(static_cast<const SteadyFormula&>(*parse_formula("S(<0.5) a")).op,
            Comparison::kLess);
  EXPECT_EQ(static_cast<const SteadyFormula&>(*parse_formula("S(<=0.5) a")).op,
            Comparison::kLessEqual);
  EXPECT_EQ(static_cast<const SteadyFormula&>(*parse_formula("S(>0.5) a")).op,
            Comparison::kGreater);
  EXPECT_EQ(static_cast<const SteadyFormula&>(*parse_formula("S(>=0.5) a")).op,
            Comparison::kGreaterEqual);
}

TEST(Comparison, CompareImplementsAllOperators) {
  EXPECT_TRUE(compare(0.4, Comparison::kLess, 0.5));
  EXPECT_FALSE(compare(0.5, Comparison::kLess, 0.5));
  EXPECT_TRUE(compare(0.5, Comparison::kLessEqual, 0.5));
  EXPECT_TRUE(compare(0.6, Comparison::kGreater, 0.5));
  EXPECT_TRUE(compare(0.5, Comparison::kGreaterEqual, 0.5));
  EXPECT_FALSE(compare(0.4, Comparison::kGreaterEqual, 0.5));
}

}  // namespace
}  // namespace csrlmrm::logic

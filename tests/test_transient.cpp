// Standard CTMC transient analysis against closed forms.
#include "numeric/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rate_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace csrlmrm::numeric {
namespace {

core::RateMatrix two_state(double a, double b) {
  core::RateMatrixBuilder builder(2);
  builder.add(0, 1, a);
  builder.add(1, 0, b);
  return builder.build();
}

TEST(Transient, AtTimeZeroReturnsInitialDistribution) {
  const auto p = transient_distribution(two_state(1.0, 2.0), {0.3, 0.7}, 0.0);
  EXPECT_DOUBLE_EQ(p[0], 0.3);
  EXPECT_DOUBLE_EQ(p[1], 0.7);
}

TEST(Transient, PureDecayMatchesExponential) {
  // 0 -> 1 absorbing at rate mu: p0(t) = e^{-mu t}.
  core::RateMatrixBuilder builder(2);
  const double mu = 1.7;
  builder.add(0, 1, mu);
  const auto rates = builder.build();
  for (double t : {0.1, 0.5, 1.0, 3.0}) {
    const auto p = transient_distribution_from(rates, 0, t);
    EXPECT_NEAR(p[0], std::exp(-mu * t), 1e-10) << "t=" << t;
    EXPECT_NEAR(p[1], 1.0 - std::exp(-mu * t), 1e-10);
  }
}

TEST(Transient, TwoStateChainMatchesClosedForm) {
  // p0(t) = b/(a+b) + a/(a+b) e^{-(a+b)t} starting in state 0.
  const double a = 2.0;
  const double b = 0.5;
  const auto rates = two_state(a, b);
  for (double t : {0.25, 1.0, 4.0}) {
    const auto p = transient_distribution_from(rates, 0, t);
    const double expected = b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
    EXPECT_NEAR(p[0], expected, 1e-10) << "t=" << t;
  }
}

TEST(Transient, ResultIsADistribution) {
  const auto p = transient_distribution(two_state(1.0, 3.0), {0.5, 0.5}, 2.0);
  EXPECT_TRUE(linalg::is_distribution(p, 1e-9));
}

TEST(Transient, AllAbsorbingChainDoesNotMove) {
  core::RateMatrixBuilder builder(3);
  const auto p = transient_distribution(builder.build(), {0.2, 0.3, 0.5}, 10.0);
  EXPECT_DOUBLE_EQ(p[0], 0.2);
  EXPECT_DOUBLE_EQ(p[1], 0.3);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(Transient, ConvergesToSteadyStateForLargeT) {
  const double a = 1.0;
  const double b = 4.0;
  const auto p = transient_distribution_from(two_state(a, b), 0, 200.0);
  EXPECT_NEAR(p[0], b / (a + b), 1e-9);
  EXPECT_NEAR(p[1], a / (a + b), 1e-9);
}

TEST(Transient, SelfLoopsDoNotChangeTheDistribution) {
  // A CTMC self-loop is semantically invisible to occupation probabilities.
  core::RateMatrixBuilder plain(2);
  plain.add(0, 1, 1.0);
  plain.add(1, 0, 2.0);
  core::RateMatrixBuilder looped(2);
  looped.add(0, 1, 1.0);
  looped.add(1, 0, 2.0);
  looped.add(0, 0, 5.0);
  const auto p1 = transient_distribution_from(plain.build(), 0, 1.5);
  const auto p2 = transient_distribution_from(looped.build(), 0, 1.5);
  EXPECT_NEAR(p1[0], p2[0], 1e-9);
  EXPECT_NEAR(p1[1], p2[1], 1e-9);
}

TEST(Transient, RejectsBadInitialDistribution) {
  const auto rates = two_state(1.0, 1.0);
  EXPECT_THROW(transient_distribution(rates, {0.5, 0.4}, 1.0), std::invalid_argument);
  EXPECT_THROW(transient_distribution(rates, {1.5, -0.5}, 1.0), std::invalid_argument);
  EXPECT_THROW(transient_distribution(rates, {1.0}, 1.0), std::invalid_argument);
}

TEST(Transient, RejectsBadTime) {
  const auto rates = two_state(1.0, 1.0);
  EXPECT_THROW(transient_distribution_from(rates, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(transient_distribution_from(rates, 5, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::numeric

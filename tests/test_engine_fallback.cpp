// Graceful degradation of the P2 uniformization engine and engine-agnostic
// three-valued verdicts: exhausting the DFS node budget must not abort the
// whole check when a fallback policy is configured, the returned interval
// must still contain the truth, and a threshold inside the error band must
// yield UNKNOWN (not an engine-dependent SAT/UNSAT flip).
#include <gtest/gtest.h>

#include <algorithm>

#include "checker/sat.hpp"
#include "checker/until.hpp"
#include "logic/ast.hpp"
#include "numeric/path_explorer.hpp"
#include "obs/stats.hpp"

namespace csrlmrm::checker {
namespace {

/// A three-state cycle with integer state rewards (so the discretization
/// fallback is always feasible) and no impulse rewards. a-states 0 and 1,
/// b-state 2.
core::Mrm make_cycle() {
  core::RateMatrixBuilder rates(3);
  rates.add(0, 1, 1.0);
  rates.add(1, 2, 1.0);
  rates.add(2, 0, 1.0);
  core::Labeling labels(3);
  labels.add(0, "a");
  labels.add(1, "a");
  labels.add(2, "b");
  return core::Mrm(core::Ctmc(rates.build(), std::move(labels)), {1.0, 2.0, 1.0});
}

const std::vector<bool> kPhi{true, true, false};
const std::vector<bool> kPsi{false, false, true};

CheckerOptions starved(BudgetPolicy policy) {
  CheckerOptions options;
  // Pin the engine: these tests exercise the mid-flight degradation chain,
  // which requires a uniformization engine to actually hit its budget. The
  // default auto cost model would see the starved budget up front and pick
  // discretization directly (covered by the AutoEngine tests below).
  options.until_engine = UntilEngine::kClassDp;
  options.uniformization.truncation_probability = 1e-12;
  options.uniformization.max_nodes = 5;  // guaranteed exhaustion
  options.on_budget_exhausted = policy;
  return options;
}

class EngineFallback : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_stats_enabled(true);
    obs::StatsRegistry::global().reset();
  }
  void TearDown() override {
    obs::StatsRegistry::global().reset();
    obs::set_stats_enabled(false);
  }
};

TEST_F(EngineFallback, ThrowPolicyRaisesTypedBudgetError) {
  const core::Mrm model = make_cycle();
  EXPECT_THROW(until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(10.0),
                                   starved(BudgetPolicy::kThrow)),
               numeric::NodeBudgetError);
}

TEST_F(EngineFallback, FallbackPolicyDegradesToDiscretizationWithoutThrowing) {
  const core::Mrm model = make_cycle();

  // Reference 1: the accurate uniformization value (ample budget).
  CheckerOptions accurate;
  accurate.uniformization.truncation_probability = 1e-12;
  const auto exact =
      until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(10.0), accurate);

  // Reference 2: the pure discretization engine.
  CheckerOptions disc;
  disc.until_method = UntilMethod::kDiscretization;
  const auto by_disc =
      until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(10.0), disc);

  // Degraded run: budget forces the fallback; must not throw.
  const auto degraded =
      until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(10.0),
                          starved(BudgetPolicy::kFallbackToDiscretization));

  EXPECT_GE(obs::StatsRegistry::global().counter("uniformization.fallbacks"), 1u);
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    // The degraded interval still encloses both references' truths.
    EXPECT_TRUE(degraded[s].bound.contains(by_disc[s].probability))
        << "state " << s << ": " << degraded[s].bound.to_string() << " vs discretization "
        << by_disc[s].probability;
    EXPECT_TRUE(degraded[s].bound.overlaps(exact[s].bound))
        << "state " << s << ": " << degraded[s].bound.to_string() << " vs "
        << exact[s].bound.to_string();
    EXPECT_GE(degraded[s].bound.lower, 0.0);
    EXPECT_LE(degraded[s].bound.upper, 1.0);
  }
}

TEST_F(EngineFallback, WidenWPolicyDoesNotThrowAndKeepsTheTruthEnclosed) {
  const core::Mrm model = make_cycle();
  CheckerOptions accurate;
  accurate.uniformization.truncation_probability = 1e-12;
  const auto exact =
      until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(10.0), accurate);

  const auto widened = until_probabilities(model, kPhi, kPsi, logic::up_to(1.0),
                                           logic::up_to(10.0), starved(BudgetPolicy::kWidenW));
  // Either a coarser w fit the budget or the engine fell through to
  // discretization; both are recorded and both keep a rigorous interval.
  const auto& registry = obs::StatsRegistry::global();
  EXPECT_GE(registry.counter("uniformization.widenings") +
                registry.counter("uniformization.fallbacks"),
            1u);
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    EXPECT_TRUE(widened[s].bound.overlaps(exact[s].bound)) << "state " << s;
  }
}

TEST_F(EngineFallback, AutoStarvedRunDiscretizesUpFrontWithoutThrowing) {
  // The default auto cost model sees live * levels > max_nodes before
  // exploring anything and goes straight to discretization (no impulse
  // rewards, degradation allowed) — no NodeBudgetError is ever raised and
  // the choice is recorded.
  const core::Mrm model = make_cycle();
  CheckerOptions options = starved(BudgetPolicy::kFallbackToDiscretization);
  options.until_engine = UntilEngine::kAuto;
  const auto values =
      until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(10.0), options);
  EXPECT_GE(obs::StatsRegistry::global().counter("engine.auto_choice.discretization"), 1u);

  CheckerOptions disc;
  disc.until_method = UntilMethod::kDiscretization;
  const auto by_disc =
      until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(10.0), disc);
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    EXPECT_TRUE(values[s].bound.contains(by_disc[s].probability))
        << "state " << s << ": " << values[s].bound.to_string();
  }
}

TEST_F(EngineFallback, AutoUnderThrowPolicyFailsLoudlyInsteadOfDegrading) {
  // kThrow disables every degradation, including auto's up-front method
  // switch: the starved run must still raise the typed budget error.
  const core::Mrm model = make_cycle();
  CheckerOptions options = starved(BudgetPolicy::kThrow);
  options.until_engine = UntilEngine::kAuto;
  EXPECT_THROW(
      until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(10.0), options),
      numeric::NodeBudgetError);
}

TEST(AutoEngineChooser, AmpleBudgetPicksClassDpWithTheHybridArmed) {
  const core::Mrm model = make_cycle();
  const CheckerOptions options;  // defaults: generous budget
  const AutoEngineChoice choice = choose_until_engine(model, 1.0, options);
  EXPECT_EQ(choice.method, UntilMethod::kUniformization);
  EXPECT_EQ(choice.engine, UntilEngine::kClassDp);
  EXPECT_TRUE(choice.adaptive_hybrid);
}

TEST(AutoEngineChooser, PerPathAblationKnobRoutesToTheDfsEngine) {
  const core::Mrm model = make_cycle();
  CheckerOptions options;
  options.uniformization.aggregate_signatures = false;
  const AutoEngineChoice choice = choose_until_engine(model, 1.0, options);
  EXPECT_EQ(choice.method, UntilMethod::kUniformization);
  EXPECT_EQ(choice.engine, UntilEngine::kDfpg);
  EXPECT_FALSE(choice.adaptive_hybrid);
}

TEST(AutoEngineChooser, ProvablyOverBudgetPicksDiscretizationUnlessThrowing) {
  const core::Mrm model = make_cycle();
  CheckerOptions options;
  options.uniformization.max_nodes = 5;
  const AutoEngineChoice degrading = choose_until_engine(model, 1.0, options);
  EXPECT_EQ(degrading.method, UntilMethod::kDiscretization);

  options.on_budget_exhausted = BudgetPolicy::kThrow;
  const AutoEngineChoice throwing = choose_until_engine(model, 1.0, options);
  EXPECT_EQ(throwing.method, UntilMethod::kUniformization);
  EXPECT_EQ(throwing.engine, UntilEngine::kClassDp);
}

TEST(EngineBoundaries, ZeroTimeHorizonIsTheIndicatorOfPsiOnBothEngines) {
  const core::Mrm model = make_cycle();
  for (const auto method : {UntilMethod::kUniformization, UntilMethod::kDiscretization}) {
    CheckerOptions options;
    options.until_method = method;
    const auto values =
        until_probabilities(model, kPhi, kPsi, logic::up_to(0.0), logic::up_to(1.0), options);
    EXPECT_DOUBLE_EQ(values[2].probability, 1.0);
    EXPECT_DOUBLE_EQ(values[0].probability, 0.0);
    EXPECT_DOUBLE_EQ(values[1].probability, 0.0);
    EXPECT_TRUE(values[2].bound.contains(1.0));
    EXPECT_LE(values[0].bound.width(), 1e-12);
  }
}

TEST(EngineBoundaries, ZeroRewardBoundScoresPsiStartsOnlyOnBothEngines) {
  // With strictly positive gain rates, Y grows immediately: only a start
  // already in Psi (satisfied at x = 0 with Y(0) = 0) can win.
  const core::Mrm model = make_cycle();
  for (const auto method : {UntilMethod::kUniformization, UntilMethod::kDiscretization}) {
    CheckerOptions options;
    options.until_method = method;
    const auto values =
        until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(0.0), options);
    EXPECT_DOUBLE_EQ(values[2].probability, 1.0);
    EXPECT_NEAR(values[0].probability, 0.0, values[0].error_bound + 1e-12);
    EXPECT_NEAR(values[1].probability, 0.0, values[1].error_bound + 1e-12);
  }
}

TEST(EngineBoundaries, PointTimeIntervalIsBoundedByTheFullWindow) {
  // [t,t] demands Psi exactly at time t; [0,t] accepts any earlier witness,
  // so its probability dominates (up to the engines' error bands).
  const core::Mrm model = make_cycle();
  const std::vector<bool> everywhere(3, true);
  CheckerOptions options;
  const auto at_t = until_probabilities(model, everywhere, kPsi, logic::Interval{1.0, 1.0},
                                        logic::Interval{}, options);
  const auto up_to_t = until_probabilities(model, everywhere, kPsi, logic::up_to(1.0),
                                           logic::Interval{}, options);
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    EXPECT_GE(at_t[s].probability, 0.0);
    EXPECT_LE(at_t[s].probability, 1.0);
    EXPECT_TRUE(at_t[s].bound.contains(at_t[s].probability));
    EXPECT_LE(at_t[s].bound.lower, up_to_t[s].bound.upper + 1e-12) << "state " << s;
  }
}

TEST(VerdictStability, ThresholdInsideTheErrorBandIsUnknownOnBothEngines) {
  // The regression this layer exists for: with the threshold inside both
  // engines' error bands the answer must be UNKNOWN twice — never SAT from
  // one engine and UNSAT from the other.
  const core::Mrm model = make_cycle();

  CheckerOptions coarse_uni;
  coarse_uni.uniformization.truncation_probability = 0.1;
  CheckerOptions coarse_disc;
  coarse_disc.until_method = UntilMethod::kDiscretization;
  coarse_disc.discretization.step = 0.25;

  const auto uni = until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(2.0),
                                       coarse_uni);
  const auto disc = until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(2.0),
                                        coarse_disc);
  const core::StateIndex s = 0;
  ASSERT_GT(uni[s].bound.width(), 0.0);
  ASSERT_GT(disc[s].bound.width(), 0.0);
  const double lo = std::max(uni[s].bound.lower, disc[s].bound.lower);
  const double hi = std::min(uni[s].bound.upper, disc[s].bound.upper);
  ASSERT_LT(lo, hi) << "intervals must overlap: " << uni[s].bound.to_string() << " "
                    << disc[s].bound.to_string();
  const double threshold = 0.5 * (lo + hi);

  const auto straddling = logic::make_prob_until(logic::Comparison::kGreaterEqual, threshold,
                                                 logic::up_to(1.0), logic::up_to(2.0),
                                                 logic::make_atomic("a"),
                                                 logic::make_atomic("b"));

  ModelChecker by_uni(model, coarse_uni);
  ModelChecker by_disc(model, coarse_disc);
  EXPECT_EQ(by_uni.verdicts(straddling)[s], Verdict::kUnknown);
  EXPECT_EQ(by_disc.verdicts(straddling)[s], Verdict::kUnknown);
  // And UNKNOWN states are never reported as satisfying.
  EXPECT_FALSE(by_uni.satisfaction_set(straddling)[s]);
  EXPECT_FALSE(by_disc.satisfaction_set(straddling)[s]);
  EXPECT_TRUE(by_uni.unknown_set(straddling)[s]);
}

TEST(VerdictStability, KleenePropagationThroughConnectives) {
  const core::Mrm model = make_cycle();
  CheckerOptions coarse;
  coarse.uniformization.truncation_probability = 0.1;
  const auto values =
      until_probabilities(model, kPhi, kPsi, logic::up_to(1.0), logic::up_to(2.0), coarse);
  const core::StateIndex s = 0;
  ASSERT_GT(values[s].bound.width(), 0.0);
  const double threshold = 0.5 * (values[s].bound.lower + values[s].bound.upper);

  const auto unknown_node =
      logic::make_prob_until(logic::Comparison::kGreaterEqual, threshold, logic::up_to(1.0),
                             logic::up_to(2.0), logic::make_atomic("a"),
                             logic::make_atomic("b"));
  ModelChecker checker(model, coarse);
  ASSERT_EQ(checker.verdicts(unknown_node)[s], Verdict::kUnknown);

  // T || U = T; F && U = F; !U = U; U || F = U.
  EXPECT_EQ(checker.verdicts(logic::make_or(logic::make_true(), unknown_node))[s],
            Verdict::kSat);
  EXPECT_EQ(checker.verdicts(logic::make_and(logic::make_false(), unknown_node))[s],
            Verdict::kUnsat);
  EXPECT_EQ(checker.verdicts(logic::make_not(unknown_node))[s], Verdict::kUnknown);
  EXPECT_EQ(checker.verdicts(logic::make_or(unknown_node, logic::make_false()))[s],
            Verdict::kUnknown);
  EXPECT_EQ(checker.verdicts(logic::make_and(unknown_node, logic::make_true()))[s],
            Verdict::kUnknown);
}

}  // namespace
}  // namespace csrlmrm::checker

// Depth truncation (eq. 4.3): the alternative truncation mode of section
// 4.4.2, layered onto the DFPG explorer.
#include <gtest/gtest.h>

#include "core/transform.hpp"
#include "models/wavelan.hpp"
#include "numeric/path_explorer.hpp"

namespace csrlmrm::numeric {
namespace {

/// The Example 3.6 workload: M[!idle v busy], target busy, start idle.
struct Workload {
  explicit Workload()
      : model(models::make_wavelan()),
        psi(model.labels().states_with("busy")),
        dead(5, false) {
    const auto idle = model.labels().states_with("idle");
    std::vector<bool> absorb(5, false);
    for (std::size_t s = 0; s < 5; ++s) {
      absorb[s] = !idle[s] || psi[s];
      dead[s] = !idle[s] && !psi[s];
    }
    engine.emplace(core::make_absorbing(model, absorb), psi, dead);
  }
  core::Mrm model;
  std::vector<bool> psi;
  std::vector<bool> dead;
  std::optional<UniformizationUntilEngine> engine;
};

TEST(DepthTruncation, CapsTheExploredDepth) {
  Workload workload;
  PathExplorerOptions options;
  options.truncation_probability = 1e-18;
  options.depth_truncation = 10;
  const auto result = workload.engine->compute(models::kWavelanIdle, 1.0, 2000.0, options);
  EXPECT_LE(result.max_depth, 10u);
}

TEST(DepthTruncation, ErrorBoundCoversTheDiscardedMass) {
  Workload workload;
  PathExplorerOptions fine;
  fine.truncation_probability = 1e-18;
  const auto reference = workload.engine->compute(models::kWavelanIdle, 1.0, 2000.0, fine);

  PathExplorerOptions shallow = fine;
  shallow.depth_truncation = 6;
  const auto truncated = workload.engine->compute(models::kWavelanIdle, 1.0, 2000.0, shallow);
  EXPECT_LE(truncated.probability, reference.probability + 1e-12);
  EXPECT_LE(reference.probability - truncated.probability, truncated.error_bound + 1e-12);
  EXPECT_GT(truncated.error_bound, reference.error_bound);
}

TEST(DepthTruncation, DeepEnoughBoundIsHarmless) {
  Workload workload;
  PathExplorerOptions fine;
  fine.truncation_probability = 1e-15;
  const auto reference = workload.engine->compute(models::kWavelanIdle, 1.0, 2000.0, fine);
  PathExplorerOptions capped = fine;
  capped.depth_truncation = 4096;  // far beyond any surviving path
  const auto result = workload.engine->compute(models::kWavelanIdle, 1.0, 2000.0, capped);
  EXPECT_DOUBLE_EQ(result.probability, reference.probability);
  EXPECT_DOUBLE_EQ(result.error_bound, reference.error_bound);
}

TEST(DepthTruncation, ErrorShrinksMonotonicallyWithDepth) {
  Workload workload;
  PathExplorerOptions options;
  options.truncation_probability = 1e-18;
  double previous_error = 2.0;
  double previous_probability = -1.0;
  for (std::size_t depth : {2u, 4u, 8u, 16u, 32u}) {
    options.depth_truncation = depth;
    const auto result = workload.engine->compute(models::kWavelanIdle, 1.0, 2000.0, options);
    EXPECT_LE(result.error_bound, previous_error + 1e-15) << "depth=" << depth;
    EXPECT_GE(result.probability, previous_probability - 1e-15);
    previous_error = result.error_bound;
    previous_probability = result.probability;
  }
}

TEST(DepthTruncation, DepthZeroDisablesTheBound) {
  Workload workload;
  PathExplorerOptions with;
  with.truncation_probability = 1e-15;
  with.depth_truncation = 0;
  PathExplorerOptions without;
  without.truncation_probability = 1e-15;
  const auto a = workload.engine->compute(models::kWavelanIdle, 1.0, 2000.0, with);
  const auto b = workload.engine->compute(models::kWavelanIdle, 1.0, 2000.0, without);
  EXPECT_DOUBLE_EQ(a.probability, b.probability);
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
}

}  // namespace
}  // namespace csrlmrm::numeric

// Serial/parallel equivalence and determinism for the thread-pool layer and
// every kernel that fans out over it: the discretization level sweep, the
// uniformization series (transient distribution / occupation times), and
// full per-state Until checks through the checker. All parallel kernels are
// designed so that each output element is produced by exactly one task in
// the same floating-point order as the serial code, so the assertions can
// demand bitwise equality, stronger than the 1e-12 acceptance bound.
//
// Suite names all start with "Parallel" so `ctest -L tsan` (a ThreadSanitizer
// build with CSRLMRM_SANITIZE=thread) can select exactly this file via
// --gtest_filter=Parallel*.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "checker/until.hpp"
#include "core/transform.hpp"
#include "models/random_mrm.hpp"
#include "numeric/discretization.hpp"
#include "numeric/transient.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm {
namespace {

constexpr std::uint32_t kNumModels = 50;
const unsigned kThreadCounts[] = {1, 2, 8};

models::RandomMrmConfig small_config() {
  models::RandomMrmConfig config;
  config.num_states = 8;
  config.max_rate = 1.0;
  return config;
}

/// Phi/Psi masks that are never vacuous, mirroring the cross-validation
/// suite's construction.
void make_masks(const core::Mrm& model, std::uint32_t seed, std::vector<bool>& phi,
                std::vector<bool>& psi) {
  phi = model.labels().states_with("a");
  psi = model.labels().states_with("b");
  bool any_psi = false;
  for (auto v : psi) any_psi = any_psi || v;
  if (!any_psi) psi[seed % model.num_states()] = true;
  for (std::size_t s = 0; s < phi.size(); ++s) phi[s] = phi[s] || (s % 2 == 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const unsigned threads : kThreadCounts) {
    std::vector<std::atomic<int>> hits(1000);
    for (auto& h : hits) h = 0;
    parallel::parallel_for(hits.size(), threads, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << "i=" << i;
  }
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(parallel::parallel_for(100, 4,
                                      [&](std::size_t begin, std::size_t) {
                                        if (begin > 0) throw std::runtime_error("boom");
                                      }),
               std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<int> sum{0};
  parallel::parallel_for(10, 4, [&](std::size_t begin, std::size_t end) {
    sum += static_cast<int>(end - begin);
  });
  EXPECT_EQ(sum, 10);
}

TEST(ParallelFor, NestedRegionsRunInline) {
  std::atomic<int> inner_regions{0};
  parallel::parallel_for(8, 4, [&](std::size_t outer_begin, std::size_t outer_end) {
    EXPECT_TRUE(parallel::in_parallel_region());
    for (std::size_t i = outer_begin; i < outer_end; ++i) {
      parallel::parallel_for(4, 4, [&](std::size_t begin, std::size_t end) {
        // Inline execution hands the nested body the whole range at once.
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 4u);
        ++inner_regions;
      });
    }
  });
  EXPECT_EQ(inner_regions, 8);
  EXPECT_FALSE(parallel::in_parallel_region());
}

TEST(ParallelReduce, DeterministicChunkOrderSum) {
  std::vector<double> values(10007);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = std::sin(double(i)) * 1e-3;
  const auto chunk_sum = [&](std::size_t begin, std::size_t end, double acc) {
    for (std::size_t i = begin; i < end; ++i) acc += values[i];
    return acc;
  };
  const auto join = [](double a, double b) { return a + b; };
  for (const unsigned threads : kThreadCounts) {
    const double once =
        parallel::parallel_reduce(values.size(), threads, 0.0, chunk_sum, join);
    const double again =
        parallel::parallel_reduce(values.size(), threads, 0.0, chunk_sum, join);
    EXPECT_EQ(once, again) << "threads=" << threads;  // bitwise, fixed chunking
    const double serial = chunk_sum(0, values.size(), 0.0);
    EXPECT_NEAR(once, serial, 1e-12);
  }
}

TEST(ParallelDefaults, ThreadCountResolution) {
  parallel::set_default_thread_count(3);
  EXPECT_EQ(parallel::resolve_thread_count(0), 3u);
  EXPECT_EQ(parallel::resolve_thread_count(7), 7u);
  // Tiny default-threaded workloads stay serial; explicit requests win.
  EXPECT_EQ(parallel::choose_thread_count(0, 10), 1u);
  EXPECT_EQ(parallel::choose_thread_count(5, 10), 5u);
  parallel::set_default_thread_count(0);
}

TEST(ParallelDiscretization, MatchesSerialOnRandomMrms) {
  numeric::DiscretizationOptions serial;
  serial.step = 1.0 / 16.0;  // max exit rate <= 7 -> d*E < 1; divides impulses (k/4)
  serial.threads = 1;
  for (std::uint32_t seed = 0; seed < kNumModels; ++seed) {
    const core::Mrm model = models::make_random_mrm(seed, small_config());
    std::vector<bool> phi, psi;
    make_masks(model, seed, phi, psi);
    const auto reference =
        numeric::until_probability_discretization(model, psi, 0, 2.0, 3.0, serial);
    for (const unsigned threads : {2u, 8u}) {
      numeric::DiscretizationOptions options = serial;
      options.threads = threads;
      const auto result =
          numeric::until_probability_discretization(model, psi, 0, 2.0, 3.0, options);
      EXPECT_EQ(result.probability, reference.probability)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(result.time_steps, reference.time_steps);
      EXPECT_EQ(result.reward_levels, reference.reward_levels);
    }
  }
}

TEST(ParallelDiscretization, DeterministicAcrossRepeatedRuns) {
  const core::Mrm model = models::make_random_mrm(7, small_config());
  std::vector<bool> phi, psi;
  make_masks(model, 7, phi, psi);
  for (const unsigned threads : kThreadCounts) {
    numeric::DiscretizationOptions options;
    options.step = 1.0 / 16.0;
    options.threads = threads;
    const auto first =
        numeric::until_probability_discretization(model, psi, 0, 2.0, 3.0, options);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto again =
          numeric::until_probability_discretization(model, psi, 0, 2.0, 3.0, options);
      EXPECT_EQ(again.probability, first.probability)
          << "threads=" << threads << " repeat=" << repeat;
    }
  }
}

TEST(ParallelTransient, DistributionMatchesSerialOnRandomMrms) {
  for (std::uint32_t seed = 0; seed < kNumModels; ++seed) {
    const core::Mrm model = models::make_random_mrm(seed, small_config());
    numeric::TransientOptions serial;
    serial.threads = 1;
    const auto reference =
        numeric::transient_distribution_from(model.rates(), 0, 1.5, serial);
    for (const unsigned threads : {2u, 8u}) {
      numeric::TransientOptions options;
      options.threads = threads;
      const auto result =
          numeric::transient_distribution_from(model.rates(), 0, 1.5, options);
      ASSERT_EQ(result.size(), reference.size());
      for (std::size_t s = 0; s < result.size(); ++s) {
        EXPECT_NEAR(result[s], reference[s], 1e-12)
            << "seed=" << seed << " threads=" << threads << " s=" << s;
      }
    }
  }
}

TEST(ParallelTransient, OccupationTimesMatchSerial) {
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const core::Mrm model = models::make_random_mrm(seed, small_config());
    std::vector<double> initial(model.num_states(), 0.0);
    initial[0] = 1.0;
    numeric::TransientOptions serial;
    serial.threads = 1;
    const auto reference =
        numeric::expected_occupation_times(model.rates(), initial, 2.0, serial);
    numeric::TransientOptions options;
    options.threads = 8;
    const auto result = numeric::expected_occupation_times(model.rates(), initial, 2.0, options);
    for (std::size_t s = 0; s < result.size(); ++s) {
      EXPECT_NEAR(result[s], reference[s], 1e-12) << "seed=" << seed << " s=" << s;
    }
  }
}

TEST(ParallelTransient, BatchedStartStatesMatchSingleRuns) {
  const core::Mrm model = models::make_random_mrm(3, small_config());
  std::vector<core::StateIndex> starts(model.num_states());
  std::iota(starts.begin(), starts.end(), 0);
  for (const unsigned threads : kThreadCounts) {
    numeric::TransientOptions options;
    options.threads = threads;
    const auto rows =
        numeric::transient_distributions_from_states(model.rates(), starts, 1.5, options);
    ASSERT_EQ(rows.size(), starts.size());
    numeric::TransientOptions serial;
    serial.threads = 1;
    for (std::size_t i = 0; i < starts.size(); ++i) {
      const auto single =
          numeric::transient_distribution_from(model.rates(), starts[i], 1.5, serial);
      for (std::size_t s = 0; s < single.size(); ++s) {
        EXPECT_NEAR(rows[i][s], single[s], 1e-12)
            << "threads=" << threads << " start=" << starts[i] << " s=" << s;
      }
    }
  }
}

/// Full Until checks (checker layer, both engines) on random MRMs: the
/// parallel per-state fan-out must reproduce the serial evaluation.
TEST(ParallelUntil, FullChecksMatchSerialOnRandomMrms) {
  for (std::uint32_t seed = 0; seed < kNumModels; ++seed) {
    const core::Mrm model = models::make_random_mrm(seed, small_config());
    std::vector<bool> phi, psi;
    make_masks(model, seed, phi, psi);

    checker::CheckerOptions serial;
    serial.threads = 1;
    serial.until_method = (seed % 2 == 0) ? checker::UntilMethod::kUniformization
                                          : checker::UntilMethod::kDiscretization;
    serial.uniformization.truncation_probability = 1e-9;
    serial.discretization.step = 1.0 / 16.0;
    const logic::Interval time_bound(0.0, 1.0);
    const logic::Interval reward_bound(0.0, 3.0);
    const auto reference =
        checker::until_probabilities(model, phi, psi, time_bound, reward_bound, serial);

    for (const unsigned threads : {2u, 8u}) {
      checker::CheckerOptions options = serial;
      options.threads = threads;
      const auto result =
          checker::until_probabilities(model, phi, psi, time_bound, reward_bound, options);
      ASSERT_EQ(result.size(), reference.size());
      for (std::size_t s = 0; s < result.size(); ++s) {
        EXPECT_NEAR(result[s].probability, reference[s].probability, 1e-12)
            << "seed=" << seed << " threads=" << threads << " s=" << s;
        EXPECT_NEAR(result[s].error_bound, reference[s].error_bound, 1e-12)
            << "seed=" << seed << " threads=" << threads << " s=" << s;
      }
    }
  }
}

TEST(ParallelUntil, TimeBoundedAndIntervalPathsMatchSerial) {
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const core::Mrm model = models::make_random_mrm(seed, small_config());
    std::vector<bool> phi, psi;
    make_masks(model, seed, phi, psi);
    checker::CheckerOptions serial;
    serial.threads = 1;
    checker::CheckerOptions wide = serial;
    wide.threads = 8;
    // P1 (time-bounded, reward-trivial) and P1' (interval) reductions, which
    // exercise the batched transient fan-out.
    for (const auto& time_bound : {logic::Interval(0.0, 2.0), logic::Interval(0.5, 2.0)}) {
      const auto reference = checker::until_probabilities(model, phi, psi, time_bound,
                                                          logic::Interval{}, serial);
      const auto result =
          checker::until_probabilities(model, phi, psi, time_bound, logic::Interval{}, wide);
      for (std::size_t s = 0; s < result.size(); ++s) {
        EXPECT_NEAR(result[s].probability, reference[s].probability, 1e-12)
            << "seed=" << seed << " s=" << s;
      }
    }
  }
}

TEST(ParallelUntil, DeterministicAcrossRepeatedRuns) {
  const core::Mrm model = models::make_random_mrm(11, small_config());
  std::vector<bool> phi, psi;
  make_masks(model, 11, phi, psi);
  for (const unsigned threads : kThreadCounts) {
    checker::CheckerOptions options;
    options.threads = threads;
    options.discretization.step = 1.0 / 16.0;
    options.until_method = checker::UntilMethod::kDiscretization;
    const auto first = checker::until_probabilities(model, phi, psi, logic::Interval(0.0, 2.0),
                                                    logic::Interval(0.0, 3.0), options);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto again = checker::until_probabilities(
          model, phi, psi, logic::Interval(0.0, 2.0), logic::Interval(0.0, 3.0), options);
      for (std::size_t s = 0; s < first.size(); ++s) {
        EXPECT_EQ(again[s].probability, first[s].probability)
            << "threads=" << threads << " repeat=" << repeat << " s=" << s;
      }
    }
  }
}

}  // namespace
}  // namespace csrlmrm

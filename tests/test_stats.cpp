// Observability-layer semantics: counter/gauge/timer recording, JSON
// round-trips, and — the property the whole design hangs on — that the
// registry totals are identical at every thread count. Suites are named
// Stats* so the tsan suite (tests/CMakeLists.txt) picks them up alongside
// Parallel*.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/approx.hpp"
#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace csrlmrm {
namespace {

/// Every test runs against the global registry (that is what the engines
/// write into), so isolate: enable recording, start from empty, and leave
/// the process-wide switch off afterwards.
class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_stats_enabled(true);
    obs::StatsRegistry::global().reset();
  }
  void TearDown() override {
    obs::StatsRegistry::global().reset();
    obs::set_stats_enabled(false);
  }
};

using StatsJson = ::testing::Test;

TEST_F(StatsJson, RoundTripPreservesStructure) {
  obs::JsonValue object = obs::JsonValue::object();
  object.set("name", obs::JsonValue(std::string("fox_glynn")));
  object.set("calls", obs::JsonValue(42.0));
  object.set("ratio", obs::JsonValue(0.125));
  object.set("flag", obs::JsonValue(true));
  object.set("nothing", obs::JsonValue());
  obs::JsonValue array = obs::JsonValue::array();
  array.push_back(obs::JsonValue(1.0));
  array.push_back(obs::JsonValue(std::string("two")));
  object.set("items", std::move(array));

  const std::string text = obs::write_json(object);
  const obs::JsonValue parsed = obs::parse_json(text);
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.at("name").as_string(), "fox_glynn");
  EXPECT_DOUBLE_EQ(parsed.at("calls").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parsed.at("ratio").as_number(), 0.125);
  EXPECT_TRUE(parsed.at("flag").as_bool());
  EXPECT_TRUE(parsed.at("nothing").is_null());
  ASSERT_EQ(parsed.at("items").items().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.at("items").items()[0].as_number(), 1.0);
  EXPECT_EQ(parsed.at("items").items()[1].as_string(), "two");
}

TEST_F(StatsJson, IntegersPrintWithoutFraction) {
  obs::JsonValue v(1234567.0);
  EXPECT_EQ(obs::write_json(v), "1234567\n");
}

TEST_F(StatsJson, EscapesAndUnescapesSpecialCharacters) {
  const std::string original = "line\nbreak \"quoted\" back\\slash \t end";
  obs::JsonValue v(original);
  const obs::JsonValue parsed = obs::parse_json(obs::write_json(v));
  EXPECT_EQ(parsed.as_string(), original);
}

TEST_F(StatsJson, ParsesUnicodeEscapes) {
  const obs::JsonValue parsed = obs::parse_json("\"\\u0041\\u00e9\"");
  EXPECT_EQ(parsed.as_string(), "A\xc3\xa9");
}

TEST_F(StatsJson, RejectsMalformedInput) {
  EXPECT_THROW(obs::parse_json("{\"a\": }"), obs::JsonParseError);
  EXPECT_THROW(obs::parse_json("[1, 2"), obs::JsonParseError);
  EXPECT_THROW(obs::parse_json("12 34"), obs::JsonParseError);
  EXPECT_THROW(obs::parse_json("nul"), obs::JsonParseError);
  EXPECT_THROW(obs::parse_json(""), obs::JsonParseError);
  try {
    obs::parse_json("[1, x]");
    FAIL() << "expected JsonParseError";
  } catch (const obs::JsonParseError& error) {
    EXPECT_GT(error.offset(), 0u);
  }
}

TEST_F(StatsJson, NonFiniteNumbersSerializeAsNull) {
  obs::JsonValue array = obs::JsonValue::array();
  array.push_back(obs::JsonValue(std::nan("")));
  EXPECT_EQ(obs::write_json(array), "[\n  null\n]\n");
}

TEST_F(StatsTest, CountersAccumulateBySum) {
  obs::counter_add("test.counter");
  obs::counter_add("test.counter", 9);
  EXPECT_EQ(obs::StatsRegistry::global().counter("test.counter"), 10u);
  EXPECT_EQ(obs::StatsRegistry::global().counter("test.absent"), 0u);
}

TEST_F(StatsTest, GaugesMergeByMax) {
  obs::gauge_max("test.gauge", 3.0);
  obs::gauge_max("test.gauge", 7.0);
  obs::gauge_max("test.gauge", 5.0);
  EXPECT_DOUBLE_EQ(obs::StatsRegistry::global().gauge("test.gauge"), 7.0);
  EXPECT_TRUE(std::isnan(obs::StatsRegistry::global().gauge("test.absent")));
}

TEST_F(StatsTest, DisabledRecordingIsDropped) {
  obs::set_stats_enabled(false);
  obs::counter_add("test.counter", 5);
  obs::gauge_max("test.gauge", 1.0);
  {
    obs::ScopedTimer timer("test.timer");
  }
  obs::set_stats_enabled(true);
  EXPECT_EQ(obs::StatsRegistry::global().counter("test.counter"), 0u);
  EXPECT_TRUE(obs::StatsRegistry::global().counters().empty());
  EXPECT_TRUE(obs::StatsRegistry::global().trace().children.empty());
}

TEST_F(StatsTest, ScopedTimersFormATree) {
  {
    obs::ScopedTimer outer("test.outer");
    {
      obs::ScopedTimer inner("test.inner");
    }
    {
      obs::ScopedTimer inner("test.inner");
    }
  }
  {
    obs::ScopedTimer outer("test.outer");
  }
  const obs::TraceNode trace = obs::StatsRegistry::global().trace();
  const obs::TraceNode* outer = trace.find("test.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 2u);
  const obs::TraceNode* inner = outer->find("test.inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 2u);
  // Nested time is contained in the parent's.
  EXPECT_LE(inner->total_ns, outer->total_ns);
  EXPECT_EQ(trace.find("test.inner"), nullptr);  // only nested, never at root
}

TEST_F(StatsTest, ResetDropsEverything) {
  obs::counter_add("test.counter");
  obs::gauge_max("test.gauge", 1.0);
  {
    obs::ScopedTimer timer("test.timer");
  }
  obs::StatsRegistry::global().reset();
  EXPECT_TRUE(obs::StatsRegistry::global().counters().empty());
  EXPECT_TRUE(obs::StatsRegistry::global().gauges().empty());
  EXPECT_TRUE(obs::StatsRegistry::global().trace().children.empty());
}

TEST_F(StatsTest, LocalRegistryMergesTraces) {
  obs::StatsRegistry registry;
  obs::TraceNode first{"root", 0, 0, {{"a", 2, 100, {{"b", 1, 40, {}}}}}};
  obs::TraceNode second{"root", 0, 0, {{"a", 3, 50, {}}, {"c", 1, 10, {}}}};
  registry.merge_trace(first);
  registry.merge_trace(second);
  const obs::TraceNode trace = registry.trace();
  ASSERT_EQ(trace.children.size(), 2u);
  const obs::TraceNode* a = trace.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->calls, 5u);
  EXPECT_EQ(a->total_ns, 150u);
  ASSERT_NE(a->find("b"), nullptr);
  EXPECT_EQ(a->find("b")->calls, 1u);
  ASSERT_NE(trace.find("c"), nullptr);
}

TEST_F(StatsTest, ToJsonMatchesSchema) {
  obs::counter_add("test.counter", 3);
  obs::gauge_max("test.gauge", 2.5);
  {
    obs::ScopedTimer timer("test.op");
  }
  const obs::JsonValue document = obs::parse_json(obs::StatsRegistry::global().to_json());
  ASSERT_TRUE(document.is_object());
  EXPECT_EQ(document.at("schema").as_string(), "csrlmrm-stats-v1");
  EXPECT_DOUBLE_EQ(document.at("counters").at("test.counter").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(document.at("gauges").at("test.gauge").as_number(), 2.5);
  const obs::JsonValue& trace = document.at("trace");
  EXPECT_EQ(trace.at("name").as_string(), "root");
  ASSERT_EQ(trace.at("children").items().size(), 1u);
  const obs::JsonValue& op = trace.at("children").items()[0];
  EXPECT_EQ(op.at("name").as_string(), "test.op");
  EXPECT_DOUBLE_EQ(op.at("calls").as_number(), 1.0);
  EXPECT_GE(op.at("total_ns").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(op.at("total_ms").as_number(), op.at("total_ns").as_number() / 1e6);
}

TEST_F(StatsTest, SnapshotDeltaIsolatesARequestsWork) {
  // The mrmcheckd pattern: snapshot before a request, delta after. The delta
  // must carry only the work recorded in between — no contamination from
  // counters that predate the request (a long-lived process accumulates
  // process-lifetime totals that must never leak into a reply).
  obs::counter_add("test.before", 100);
  obs::gauge_max("test.gauge", 9.0);
  const obs::StatsSnapshot base = obs::StatsRegistry::global().snapshot();

  obs::counter_add("test.before", 5);
  obs::counter_add("test.during", 2);
  const obs::StatsSnapshot delta = obs::StatsRegistry::global().delta_since(base);

  EXPECT_EQ(delta.counters.at("test.before"), 5u);  // increment only, not 105
  EXPECT_EQ(delta.counters.at("test.during"), 2u);
  // An untouched counter is absent from the delta, not reported as zero.
  obs::counter_add("test.untouched", 7);
  const obs::StatsSnapshot base2 = obs::StatsRegistry::global().snapshot();
  const obs::StatsSnapshot delta2 = obs::StatsRegistry::global().delta_since(base2);
  EXPECT_TRUE(delta2.counters.empty());
  // A gauge that did not grow past its base maximum is absent too.
  EXPECT_EQ(delta.gauges.find("test.gauge"), delta.gauges.end());
}

TEST_F(StatsTest, SnapshotDeltaSurvivesAResetBetweenSnapshots) {
  // A reset between base and delta makes counters read lower than the base.
  // The delta must drop such entries instead of wrapping to ~2^64.
  obs::counter_add("test.counter", 50);
  const obs::StatsSnapshot base = obs::StatsRegistry::global().snapshot();
  obs::StatsRegistry::global().reset();
  obs::counter_add("test.counter", 3);
  const obs::StatsSnapshot delta = obs::StatsRegistry::global().delta_since(base);
  EXPECT_EQ(delta.counters.find("test.counter"), delta.counters.end());
}

TEST_F(StatsTest, SnapshotToJsonRoundTrips) {
  obs::counter_add("test.counter", 3);
  obs::gauge_max("test.gauge", 2.5);
  const obs::StatsSnapshot snapshot = obs::StatsRegistry::global().snapshot();
  const obs::JsonValue document =
      obs::parse_json(obs::write_json_compact(obs::snapshot_to_json(snapshot)));
  EXPECT_DOUBLE_EQ(document.at("counters").at("test.counter").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(document.at("gauges").at("test.gauge").as_number(), 2.5);
}

TEST_F(StatsJson, CompactWriterIsOneLineAndBitwiseStable) {
  obs::JsonValue object = obs::JsonValue::object();
  object.set("p", obs::JsonValue(0.010198025684297257));
  object.set("text", obs::JsonValue(std::string("a\nb")));
  obs::JsonValue array = obs::JsonValue::array();
  array.push_back(obs::JsonValue(1.0 / 3.0));
  object.set("xs", std::move(array));
  const std::string line = obs::write_json_compact(object);
  // NDJSON framing requires the payload itself to be newline-free.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const obs::JsonValue back = obs::parse_json(line);
  // Shortest round-trip formatting must reproduce the doubles bitwise.
  EXPECT_TRUE(core::exactly_equal(back.at("p").as_number(), 0.010198025684297257));
  EXPECT_TRUE(core::exactly_equal(back.at("xs").items()[0].as_number(), 1.0 / 3.0));
  EXPECT_EQ(back.at("text").as_string(), "a\nb");
}

/// The workload used for the thread-merge determinism check: fan out over
/// `items` elements, record one counter increment, a value-dependent gauge,
/// and a timed scope per element.
void run_instrumented_workload(std::size_t items, unsigned threads) {
  parallel::parallel_for(items, threads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      obs::ScopedTimer timer("test.work");
      obs::counter_add("test.items");
      obs::counter_add("test.weighted", i);
      obs::gauge_max("test.largest", static_cast<double>(i));
    }
  });
}

class StatsThreadMerge : public StatsTest {};

TEST_F(StatsThreadMerge, TotalsAreIdenticalAtEveryThreadCount) {
  constexpr std::size_t kItems = 1000;
  std::map<std::string, std::uint64_t> reference_counters;
  std::map<std::string, double> reference_gauges;
  for (const unsigned threads : {1u, 2u, 8u}) {
    obs::StatsRegistry::global().reset();
    run_instrumented_workload(kItems, threads);
    auto counters = obs::StatsRegistry::global().counters();
    const auto gauges = obs::StatsRegistry::global().gauges();
    // The pool's self-metrics describe the actual schedule (one chunk per
    // worker), so they legitimately vary with the thread count — only the
    // workload counters must be thread-invariant.
    std::erase_if(counters,
                  [](const auto& entry) { return entry.first.rfind("thread_pool.", 0) == 0; });
    EXPECT_EQ(counters.at("test.items"), kItems) << "threads=" << threads;
    EXPECT_EQ(counters.at("test.weighted"), kItems * (kItems - 1) / 2)
        << "threads=" << threads;
    EXPECT_DOUBLE_EQ(gauges.at("test.largest"), static_cast<double>(kItems - 1))
        << "threads=" << threads;
    if (threads == 1u) {
      reference_counters = counters;
      reference_gauges = gauges;
    } else {
      EXPECT_EQ(counters, reference_counters) << "threads=" << threads;
      EXPECT_EQ(gauges, reference_gauges) << "threads=" << threads;
    }
    // The per-element timer always lands at the root of each worker's tree
    // and merges into one root child with one call per element.
    const obs::TraceNode trace = obs::StatsRegistry::global().trace();
    const obs::TraceNode* work = trace.find("test.work");
    ASSERT_NE(work, nullptr) << "threads=" << threads;
    EXPECT_EQ(work->calls, kItems) << "threads=" << threads;
  }
}

TEST_F(StatsThreadMerge, WorkerDataIsVisibleImmediatelyAfterTheRegion) {
  // Regression guard for the flush ordering: the pool must flush each
  // worker's block before run() returns, so a snapshot taken right after
  // parallel_for sees every increment (no sleep, no second region).
  for (int round = 0; round < 20; ++round) {
    obs::StatsRegistry::global().reset();
    parallel::parallel_for(64, 8, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) obs::counter_add("test.round");
    });
    ASSERT_EQ(obs::StatsRegistry::global().counter("test.round"), 64u) << "round=" << round;
  }
}

TEST_F(StatsThreadMerge, OpenTimerOnMainThreadDefersOnlyTheTrace) {
  // A checker operator holds an open ScopedTimer while it fans work out to
  // the pool. The main thread participates in the drain and flushes after
  // its chunks; its open timer must keep the trace pending (indices into the
  // tree stay valid) while counters still merge.
  obs::ScopedTimer outer("test.region");
  parallel::parallel_for(256, 4, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) obs::counter_add("test.inside");
  });
  EXPECT_EQ(obs::StatsRegistry::global().counter("test.inside"), 256u);
}

}  // namespace
}  // namespace csrlmrm

// The .tra/.lab/.rewr/.rewi readers and writers (appendix file formats).
#include "io/model_files.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "models/wavelan.hpp"
#include "obs/json.hpp"

namespace csrlmrm::io {
namespace {

TEST(IoTra, ReadsAppendixFormat) {
  std::istringstream in(
      "STATES 3\n"
      "TRANSITIONS 2\n"
      "1 2 0.5\n"
      "2 3 1.25\n");
  const core::RateMatrix rates = read_tra(in);
  EXPECT_EQ(rates.num_states(), 3u);
  EXPECT_DOUBLE_EQ(rates.rate(0, 1), 0.5);  // 1-based file -> 0-based memory
  EXPECT_DOUBLE_EQ(rates.rate(1, 2), 1.25);
  EXPECT_TRUE(rates.is_absorbing(2));
}

TEST(IoTra, SkipsBlankAndCommentLines) {
  std::istringstream in(
      "STATES 2\n"
      "\n"
      "% a comment\n"
      "TRANSITIONS 1\n"
      "1 2 3.0\n");
  EXPECT_DOUBLE_EQ(read_tra(in).rate(0, 1), 3.0);
}

TEST(IoTra, RejectsWrongTransitionCount) {
  std::istringstream in(
      "STATES 2\nTRANSITIONS 2\n1 2 1.0\n");
  EXPECT_THROW(read_tra(in), ModelFileError);
}

TEST(IoTra, RejectsOutOfRangeState) {
  std::istringstream in("STATES 2\nTRANSITIONS 1\n1 5 1.0\n");
  try {
    read_tra(in);
    FAIL() << "expected ModelFileError";
  } catch (const ModelFileError& error) {
    EXPECT_EQ(error.line(), 3u);
  }
}

TEST(IoTra, RejectsMissingHeaders) {
  std::istringstream no_states("TRANSITIONS 0\n");
  EXPECT_THROW(read_tra(no_states), ModelFileError);
  std::istringstream garbage("STATES 2\nNOPE 1\n");
  EXPECT_THROW(read_tra(garbage), ModelFileError);
}

TEST(IoLab, ReadsDeclarationsAndAssignments) {
  std::istringstream in(
      "#DECLARATION\n"
      "up down busy\n"
      "#END\n"
      "1 up,busy\n"
      "2 down\n");
  const core::Labeling labels = read_lab(in, 2);
  EXPECT_TRUE(labels.has(0, "up"));
  EXPECT_TRUE(labels.has(0, "busy"));
  EXPECT_TRUE(labels.has(1, "down"));
  EXPECT_FALSE(labels.has(1, "up"));
  EXPECT_TRUE(labels.is_declared("busy"));
}

TEST(IoLab, AcceptsSpaceSeparatedPropositions) {
  std::istringstream in("#DECLARATION\na b\n#END\n1 a b\n");
  const core::Labeling labels = read_lab(in, 1);
  EXPECT_TRUE(labels.has(0, "a"));
  EXPECT_TRUE(labels.has(0, "b"));
}

TEST(IoLab, RejectsUndeclaredProposition) {
  std::istringstream in("#DECLARATION\na\n#END\n1 b\n");
  EXPECT_THROW(read_lab(in, 1), ModelFileError);
}

TEST(IoLab, RejectsMissingEnd) {
  std::istringstream in("#DECLARATION\na b\n1 a\n");
  EXPECT_THROW(read_lab(in, 1), ModelFileError);
}

TEST(IoRewr, ReadsRewardsAndDefaultsToZero) {
  std::istringstream in("2 80\n3 1319\n");
  const auto rewards = read_rewr(in, 4);
  EXPECT_DOUBLE_EQ(rewards[0], 0.0);
  EXPECT_DOUBLE_EQ(rewards[1], 80.0);
  EXPECT_DOUBLE_EQ(rewards[2], 1319.0);
  EXPECT_DOUBLE_EQ(rewards[3], 0.0);
}

TEST(IoRewi, ReadsImpulseMatrix) {
  std::istringstream in("TRANSITIONS 2\n1 2 0.02\n2 3 0.33\n");
  const auto impulses = read_rewi(in, 3);
  EXPECT_DOUBLE_EQ(impulses.at(0, 1), 0.02);
  EXPECT_DOUBLE_EQ(impulses.at(1, 2), 0.33);
  EXPECT_DOUBLE_EQ(impulses.at(2, 0), 0.0);
}

TEST(IoRewi, RejectsCountMismatch) {
  std::istringstream in("TRANSITIONS 3\n1 2 0.02\n");
  EXPECT_THROW(read_rewi(in, 2), ModelFileError);
}

class IoRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process and test case — see MrmcheckCli::SetUp below.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    directory_ = std::filesystem::temp_directory_path() /
                 (std::string("csrlmrm_io_") + std::to_string(::getpid()) + "_" + info->name());
    std::filesystem::create_directories(directory_);
    prefix_ = (directory_ / "model").string();
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }

  std::filesystem::path directory_;
  std::string prefix_;
};

TEST_F(IoRoundTrip, SaveThenLoadPreservesTheWavelanModel) {
  const core::Mrm original = models::make_wavelan();
  save_mrm(original, prefix_);
  const core::Mrm loaded =
      load_mrm(prefix_ + ".tra", prefix_ + ".lab", prefix_ + ".rewr", prefix_ + ".rewi");

  ASSERT_EQ(loaded.num_states(), original.num_states());
  for (core::StateIndex s = 0; s < original.num_states(); ++s) {
    EXPECT_DOUBLE_EQ(loaded.state_reward(s), original.state_reward(s));
    EXPECT_EQ(loaded.labels().labels_of(s), original.labels().labels_of(s));
    for (core::StateIndex s2 = 0; s2 < original.num_states(); ++s2) {
      EXPECT_DOUBLE_EQ(loaded.rates().rate(s, s2), original.rates().rate(s, s2));
      EXPECT_DOUBLE_EQ(loaded.impulse_reward(s, s2), original.impulse_reward(s, s2));
    }
  }
}

TEST_F(IoRoundTrip, LoadWithoutRewiGivesZeroImpulses) {
  const core::Mrm original = models::make_wavelan();
  save_mrm(original, prefix_);
  const core::Mrm loaded = load_mrm(prefix_ + ".tra", prefix_ + ".lab", prefix_ + ".rewr", "");
  EXPECT_FALSE(loaded.has_impulse_rewards());
}

TEST_F(IoRoundTrip, MissingFileThrows) {
  EXPECT_THROW(load_mrm("/nonexistent/x.tra", "/nonexistent/x.lab", "/nonexistent/x.rewr", ""),
               std::runtime_error);
}

#if defined(MRMCHECK_BINARY) && !defined(_WIN32)

// End-to-end tests of the mrmcheck command line: flag errors must exit with
// status 2 (usage) before any checking runs, and --stats must produce
// schema-valid JSON.
class MrmcheckCli : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process AND per test case: ctest runs each case as its own
    // process in parallel, and a shared directory would let one case's
    // remove_all race another case's writes.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    directory_ = std::filesystem::temp_directory_path() /
                 (std::string("csrlmrm_cli_") + std::to_string(::getpid()) + "_" + info->name());
    std::filesystem::create_directories(directory_);
    const std::string models = CSRLMRM_EXAMPLE_MODELS_DIR;
    model_args_ = "'" + models + "/tmr.tra' '" + models + "/tmr.lab' '" + models +
                  "/tmr.rewr' '" + models + "/tmr.rewi'";
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }

  /// Runs mrmcheck with the given arguments (output silenced) and returns
  /// its exit status, or -1 when the child did not exit normally.
  int run(const std::string& arguments) const {
    const std::string command = std::string("'") + MRMCHECK_BINARY + "' " + arguments +
                                " >/dev/null 2>/dev/null";
    const int status = std::system(command.c_str());
    if (status == -1 || !WIFEXITED(status)) return -1;
    return WEXITSTATUS(status);
  }

  /// Writes a three-state cycle (a -> a -> b -> a, unit rates, integer state
  /// rewards, no impulses) into the temp directory and returns its
  /// quoted .tra/.lab/.rewr argument string. Integer rewards keep the
  /// discretization fallback feasible; state 1's P2 value for
  /// "a U[0,1][0,10] b" is 1 - 2/e ~ 0.2584, so thresholds near 0.26 sit
  /// inside any coarse engine's error band.
  std::string write_cycle_model() const {
    const auto write = [&](const char* name, const char* text) {
      std::ofstream out(directory_ / name);
      out << text;
    };
    write("cycle.tra", "STATES 3\nTRANSITIONS 3\n1 2 1.0\n2 3 1.0\n3 1 1.0\n");
    write("cycle.lab", "#DECLARATION\na b\n#END\n1 a\n2 a\n3 b\n");
    write("cycle.rewr", "1 1.0\n2 2.0\n3 1.0\n");
    const std::string base = (directory_ / "cycle").string();
    return "'" + base + ".tra' '" + base + ".lab' '" + base + ".rewr'";
  }

  std::filesystem::path directory_;
  std::string model_args_;
};

TEST_F(MrmcheckCli, ChecksAFormulaAndExitsZero) {
  EXPECT_EQ(run(model_args_ + " NP 'P(>0.1)[Sup U[0,50][0,3000] failed]'"), 0);
}

TEST_F(MrmcheckCli, RejectsUnknownOption) {
  EXPECT_EQ(run(model_args_ + " --bogus 'TT'"), 2);
}

TEST_F(MrmcheckCli, RejectsMalformedUniformizationWindow) {
  EXPECT_EQ(run(model_args_ + " u=abc 'TT'"), 2);
  EXPECT_EQ(run(model_args_ + " u= 'TT'"), 2);
  EXPECT_EQ(run(model_args_ + " u=-1e-8 'TT'"), 2);
  EXPECT_EQ(run(model_args_ + " d=0 'TT'"), 2);
}

TEST_F(MrmcheckCli, RejectsMalformedThreadCount) {
  EXPECT_EQ(run(model_args_ + " --threads 0 'TT'"), 2);
  EXPECT_EQ(run(model_args_ + " --threads=x 'TT'"), 2);
  EXPECT_EQ(run(model_args_ + " --threads 'TT'"), 2);  // value swallowed the formula
}

TEST_F(MrmcheckCli, RejectsSecondFormulaArgument) {
  EXPECT_EQ(run(model_args_ + " 'TT' 'FF'"), 2);
}

TEST_F(MrmcheckCli, RejectsMissingFormula) {
  EXPECT_EQ(run(model_args_ + " NP"), 2);
}

TEST_F(MrmcheckCli, RejectsMalformedFallbackPolicyAndNodeBudget) {
  EXPECT_EQ(run(model_args_ + " --fallback=bogus 'TT'"), 2);
  EXPECT_EQ(run(model_args_ + " --max-nodes=0 'TT'"), 2);
  EXPECT_EQ(run(model_args_ + " --max-nodes=abc 'TT'"), 2);
}

TEST_F(MrmcheckCli, StrictExitsThreeWhenTheIntervalStraddlesTheThreshold) {
  const std::string cycle = write_cycle_model();
  const std::string query = " NP 'P(>=0.26)[a U[0,1][0,10] b]'";
  // Coarse discretization: the O(d) band around ~0.2584 contains 0.26.
  EXPECT_EQ(run(cycle + " d=0.125 --strict" + query), 3);
  // Same verdict from the other engine: coarse truncation widens the
  // one-sided DFPG interval across the threshold. UNKNOWN must never
  // degenerate into an engine-dependent SAT/UNSAT flip.
  EXPECT_EQ(run(cycle + " u=0.2 --strict" + query), 3);
  // Without --strict the run warns but succeeds.
  EXPECT_EQ(run(cycle + " d=0.125" + query), 0);
  // A tight engine decides the formula and --strict passes.
  EXPECT_EQ(run(cycle + " u=1e-10 --strict" + query), 0);
}

TEST_F(MrmcheckCli, NodeBudgetExhaustionFallsBackInsteadOfFailing) {
  const std::string cycle = write_cycle_model();
  const std::string stats_file = (directory_ / "fallback_stats.json").string();
  // Budget of 5 nodes cannot explore the cycle: with the engine pinned (the
  // default auto cost model would sidestep the exhaustion up front, see
  // below) the checker must fall back to discretization per start state,
  // still exit 0, and record the degradation in the stats JSON.
  ASSERT_EQ(run(cycle + " u=1e-12 --max-nodes=5 --until-engine=classdp --stats='" +
                stats_file + "' NP 'P(>=0.5)[a U[0,1][0,10] b]'"),
            0);
  std::ifstream in(stats_file);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const obs::JsonValue stats = obs::parse_json(buffer.str());
  const obs::JsonValue* counters = stats.find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* fallbacks = counters->find("uniformization.fallbacks");
  ASSERT_NE(fallbacks, nullptr);
  EXPECT_GE(fallbacks->as_number(), 1.0);
  // The default auto engine sees the starved budget before exploring
  // anything, goes straight to discretization, and records that choice.
  const std::string auto_stats_file = (directory_ / "auto_stats.json").string();
  ASSERT_EQ(run(cycle + " u=1e-12 --max-nodes=5 --stats='" + auto_stats_file +
                "' NP 'P(>=0.5)[a U[0,1][0,10] b]'"),
            0);
  std::ifstream auto_in(auto_stats_file);
  ASSERT_TRUE(auto_in.is_open());
  std::ostringstream auto_buffer;
  auto_buffer << auto_in.rdbuf();
  const obs::JsonValue auto_stats = obs::parse_json(auto_buffer.str());
  const obs::JsonValue* auto_counters = auto_stats.find("counters");
  ASSERT_NE(auto_counters, nullptr);
  const obs::JsonValue* chose = auto_counters->find("engine.auto_choice.discretization");
  ASSERT_NE(chose, nullptr);
  EXPECT_GE(chose->as_number(), 1.0);
  // With the throw policy the same starved run fails loudly instead — auto
  // never degrades behind a kThrow user's back.
  EXPECT_EQ(run(cycle + " u=1e-12 --max-nodes=5 --fallback=throw NP "
                        "'P(>=0.5)[a U[0,1][0,10] b]'"),
            1);
}

TEST_F(MrmcheckCli, FormulasBatchIsolatesPerFormulaFailures) {
  // A malformed formula in a --formulas batch fails alone: the remaining
  // formulas still run and the process exits 4 (batch completed with
  // per-formula failures) — not 1, and not 0.
  const auto write_batch = [&](const char* name, const char* text) {
    std::ofstream out(directory_ / name);
    out << text;
    return "'" + (directory_ / name).string() + "'";
  };
  const std::string mixed = write_batch("mixed.csrl",
                                        "P(>0.1)[Sup U[0,50][0,3000] failed]\n"
                                        "THIS IS (not a formula\n"
                                        "S(<0.9) allUp\n");
  EXPECT_EQ(run(model_args_ + " NP --formulas=" + mixed), 4);
  // --strict does not mask the failure exit: per-formula failures dominate
  // the UNKNOWN exit code.
  EXPECT_EQ(run(model_args_ + " NP --strict --formulas=" + mixed), 4);
  // A fully well-formed batch exits 0.
  const std::string clean = write_batch("clean.csrl",
                                        "P(>0.1)[Sup U[0,50][0,3000] failed]\n"
                                        "\n"
                                        "# comments and blanks are skipped\n"
                                        "S(<0.9) allUp\n");
  EXPECT_EQ(run(model_args_ + " NP --formulas=" + clean), 0);
  // --explain on a mixed batch also reports the failures via exit 4 while
  // still printing the plan of the good formulas.
  EXPECT_EQ(run(model_args_ + " NP --explain --formulas=" + mixed), 4);
}

TEST_F(MrmcheckCli, StatsToUnwritablePathFailsBeforeChecking) {
  EXPECT_EQ(run(model_args_ + " --stats=/nonexistent-dir/stats.json 'TT'"), 2);
  EXPECT_EQ(run(model_args_ + " --stats= 'TT'"), 2);
}

TEST_F(MrmcheckCli, StatsFileIsSchemaValidJson) {
  const std::string stats_file = (directory_ / "stats.json").string();
  ASSERT_EQ(run(model_args_ + " --stats='" + stats_file +
                "' NP 'P(>0.1)[Sup U[0,50][0,3000] failed]'"),
            0);
  std::ifstream in(stats_file);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const obs::JsonValue stats = obs::parse_json(buffer.str());
  const obs::JsonValue* schema = stats.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "csrlmrm-stats-v1");
  const obs::JsonValue* counters = stats.find("counters");
  ASSERT_NE(counters, nullptr);
  // The default until engine is the signature-class DP (classdp).
  EXPECT_NE(counters->find("classdp.calls"), nullptr);
  const obs::JsonValue* trace = stats.find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_NE(trace->find("children"), nullptr);
}

#endif  // MRMCHECK_BINARY && !_WIN32

}  // namespace
}  // namespace csrlmrm::io

// Unbounded until (P0, eq. 3.8): graph precomputation + linear solve.
#include <gtest/gtest.h>

#include "checker/until.hpp"
#include "models/wavelan.hpp"

namespace csrlmrm::checker {
namespace {

std::vector<bool> mask(std::size_t n, std::initializer_list<int> members) {
  std::vector<bool> m(n, false);
  for (int i : members) m[static_cast<std::size_t>(i)] = true;
  return m;
}

core::Mrm chain_mrm(std::initializer_list<std::tuple<int, int, double>> edges, std::size_t n) {
  core::RateMatrixBuilder rates(n);
  for (const auto& [from, to, rate] : edges) {
    rates.add(static_cast<std::size_t>(from), static_cast<std::size_t>(to), rate);
  }
  return core::Mrm(core::Ctmc(rates.build(), core::Labeling(n)), std::vector<double>(n, 0.0));
}

TEST(UnboundedUntil, PsiStatesHaveProbabilityOne) {
  const auto model = chain_mrm({{0, 1, 1.0}}, 2);
  const auto p = unbounded_until_probabilities(model, mask(2, {0, 1}), mask(2, {1}));
  EXPECT_DOUBLE_EQ(p[1], 1.0);
}

TEST(UnboundedUntil, RaceSplitsByRates) {
  // 0 -> 1 (rate a) vs 0 -> 2 (rate b): P(0, tt U {1}) = a/(a+b).
  const double a = 3.0;
  const double b = 1.0;
  const auto model = chain_mrm({{0, 1, a}, {0, 2, b}}, 3);
  const auto p =
      unbounded_until_probabilities(model, std::vector<bool>(3, true), mask(3, {1}));
  EXPECT_NEAR(p[0], a / (a + b), 1e-10);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
}

TEST(UnboundedUntil, Example35ReachProbabilityIsFourSevenths) {
  // The Diamond B1 computation inside Example 3.5.
  core::RateMatrixBuilder rates(5);
  rates.add(0, 1, 2.0);
  rates.add(0, 4, 1.0);
  rates.add(1, 0, 1.0);
  rates.add(1, 2, 2.0);
  rates.add(2, 3, 2.0);
  rates.add(3, 2, 1.0);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(5)),
                        std::vector<double>(5, 0.0));
  const auto p =
      unbounded_until_probabilities(model, std::vector<bool>(5, true), mask(5, {2, 3}));
  EXPECT_NEAR(p[0], 4.0 / 7.0, 1e-10);
  EXPECT_NEAR(p[1], 6.0 / 7.0, 1e-10);
  EXPECT_DOUBLE_EQ(p[4], 0.0);
}

TEST(UnboundedUntil, PhiConstraintBlocksDetours) {
  // 0 -> 1 -> 2; Phi = {0}: the path to 2 must pass the !Phi state 1.
  const auto model = chain_mrm({{0, 1, 1.0}, {1, 2, 1.0}}, 3);
  const auto p = unbounded_until_probabilities(model, mask(3, {0}), mask(3, {2}));
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
}

TEST(UnboundedUntil, LoopsEventuallyDecide) {
  // 0 <-> 1, from 1 escape to 2 (psi) or 3 (dead). Closed form by first-step
  // analysis: from 1 with rates back=1, win=2, lose=1 -> P(1) = 2/4 + 1/4 P(0),
  // P(0) = P(1) -> P = 2/3.
  const auto model = chain_mrm({{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 2.0}, {1, 3, 1.0}}, 4);
  const auto p =
      unbounded_until_probabilities(model, std::vector<bool>(4, true), mask(4, {2}));
  EXPECT_NEAR(p[0], 2.0 / 3.0, 1e-10);
  EXPECT_NEAR(p[1], 2.0 / 3.0, 1e-10);
}

TEST(UnboundedUntil, WavelanEventuallyBusyIsCertain) {
  // The WaveLAN chain is irreducible, so busy is reached almost surely.
  const core::Mrm model = models::make_wavelan();
  const auto p = unbounded_until_probabilities(model, std::vector<bool>(5, true),
                                               model.labels().states_with("busy"));
  for (std::size_t s = 0; s < 5; ++s) EXPECT_NEAR(p[s], 1.0, 1e-9) << "state " << s;
}

TEST(UnboundedUntil, SelfLoopDoesNotTrapProbability) {
  // CTMC self-loops are probabilistically irrelevant for reachability.
  const auto model = chain_mrm({{0, 0, 10.0}, {0, 1, 1.0}, {0, 2, 1.0}}, 3);
  const auto p =
      unbounded_until_probabilities(model, std::vector<bool>(3, true), mask(3, {1}));
  EXPECT_NEAR(p[0], 0.5, 1e-10);
}

TEST(UnboundedUntil, RejectsMaskSizeMismatch) {
  const auto model = chain_mrm({{0, 1, 1.0}}, 2);
  EXPECT_THROW(unbounded_until_probabilities(model, mask(3, {}), mask(2, {})),
               std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::checker

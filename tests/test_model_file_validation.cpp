// Input-validation corpus for the .tra/.lab/.rewr/.rewi readers: malformed
// files must fail with a ModelFileError naming the offending line, never
// parse silently. (This suite is also the corpus `ctest -L asan` replays
// under AddressSanitizer.)
#include <gtest/gtest.h>

#include <sstream>

#include "io/model_files.hpp"

namespace csrlmrm::io {
namespace {

std::size_t failing_line_tra(const std::string& text) {
  std::istringstream in(text);
  try {
    read_tra(in);
  } catch (const ModelFileError& error) {
    return error.line();
  }
  ADD_FAILURE() << "expected ModelFileError for:\n" << text;
  return 0;
}

TEST(TraValidation, RejectsZeroRate) {
  EXPECT_EQ(failing_line_tra("STATES 2\nTRANSITIONS 1\n1 2 0.0\n"), 3u);
}

TEST(TraValidation, RejectsNegativeRate) {
  EXPECT_EQ(failing_line_tra("STATES 2\nTRANSITIONS 1\n1 2 -0.5\n"), 3u);
}

TEST(TraValidation, RejectsNonNumericRate) {
  EXPECT_EQ(failing_line_tra("STATES 2\nTRANSITIONS 1\n1 2 fast\n"), 3u);
}

TEST(TraValidation, RejectsTrailingGarbageOnDataLine) {
  // "1 2 0.5 oops" used to parse as "1 2 0.5" with the rest dropped.
  EXPECT_EQ(failing_line_tra("STATES 2\nTRANSITIONS 1\n1 2 0.5 oops\n"), 3u);
}

TEST(TraValidation, RejectsTrailingGarbageOnHeader) {
  EXPECT_EQ(failing_line_tra("STATES 2 3\nTRANSITIONS 1\n1 2 0.5\n"), 1u);
  EXPECT_EQ(failing_line_tra("STATES 2\nTRANSITIONS 1 x\n1 2 0.5\n"), 2u);
}

TEST(TraValidation, AllowsTrailingComment) {
  std::istringstream in("STATES 2\nTRANSITIONS 1\n1 2 0.5 % the repair rate\n");
  EXPECT_DOUBLE_EQ(read_tra(in).rate(0, 1), 0.5);
}

TEST(LabValidation, EndKeywordMustBeItsOwnToken) {
  // A proposition merely containing "#END" must not close the declaration
  // section (the old reader matched by substring).
  std::istringstream in(
      "#DECLARATION\n"
      "front#ENDback ok\n"
      "#END\n"
      "1 ok\n"
      "2 front#ENDback\n");
  const core::Labeling labels = read_lab(in, 2);
  EXPECT_TRUE(labels.is_declared("front#ENDback"));
  EXPECT_TRUE(labels.has(1, "front#ENDback"));
}

TEST(LabValidation, DeclarationKeywordMustBeItsOwnToken) {
  // "%#DECLARATION" or "x#DECLARATION" as the first token is not a header.
  std::istringstream in("x#DECLARATION\n#END\n");
  EXPECT_THROW(read_lab(in, 2), ModelFileError);
}

TEST(LabValidation, StillRejectsMissingEnd) {
  std::istringstream in("#DECLARATION\nup down\n1 up\n");
  EXPECT_THROW(read_lab(in, 2), ModelFileError);
}

TEST(RewrValidation, RejectsNegativeReward) {
  std::istringstream in("1 -2.5\n");
  try {
    read_rewr(in, 2);
    FAIL() << "expected ModelFileError";
  } catch (const ModelFileError& error) {
    EXPECT_EQ(error.line(), 1u);
  }
}

TEST(RewrValidation, RejectsTrailingGarbage) {
  std::istringstream in("1 2.5 oops\n");
  EXPECT_THROW(read_rewr(in, 2), ModelFileError);
}

TEST(RewrValidation, AllowsZeroRewardAndTrailingComment) {
  std::istringstream in("1 0.0\n2 1.5 % gain\n");
  const auto rewards = read_rewr(in, 2);
  EXPECT_DOUBLE_EQ(rewards[0], 0.0);
  EXPECT_DOUBLE_EQ(rewards[1], 1.5);
}

TEST(RewiValidation, RejectsNegativeImpulse) {
  std::istringstream in("TRANSITIONS 1\n1 2 -1.0\n");
  try {
    read_rewi(in, 2);
    FAIL() << "expected ModelFileError";
  } catch (const ModelFileError& error) {
    EXPECT_EQ(error.line(), 2u);
  }
}

TEST(RewiValidation, RejectsTrailingGarbage) {
  std::istringstream in("TRANSITIONS 1\n1 2 1.0 oops\n");
  EXPECT_THROW(read_rewi(in, 2), ModelFileError);
}

TEST(RewiValidation, RejectsHeaderGarbage) {
  std::istringstream in("TRANSITIONS 1 junk\n1 2 1.0\n");
  EXPECT_THROW(read_rewi(in, 2), ModelFileError);
}

}  // namespace
}  // namespace csrlmrm::io

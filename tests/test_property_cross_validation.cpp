// Property-based cross-validation: the two independent P2 engines
// (uniformization/DFPG+Omega and discretization) and the P1 transient path
// must agree on randomly generated MRMs. This is exactly the validation
// argument of thesis section 5.3.3 ("the results obtained using
// uniformization and discretization methods converge to the same value"),
// run over a family of seeds instead of one hand-picked model.
#include <gtest/gtest.h>

#include "checker/until.hpp"
#include "checker/verdict.hpp"
#include "core/transform.hpp"
#include "models/random_mrm.hpp"
#include "numeric/discretization.hpp"
#include "numeric/path_explorer.hpp"
#include "obs/stats.hpp"
#include "sim/simulator.hpp"

namespace csrlmrm {
namespace {

struct Workload {
  std::uint32_t seed;
  double t;
  double r;
};

void PrintTo(const Workload& w, std::ostream* os) {
  *os << "seed=" << w.seed << " t=" << w.t << " r=" << w.r;
}

class EnginesAgree : public ::testing::TestWithParam<Workload> {};

TEST_P(EnginesAgree, UniformizationMatchesDiscretization) {
  const auto [seed, t, r] = GetParam();
  models::RandomMrmConfig config;
  config.num_states = 6;
  config.max_rate = 1.0;  // keeps Lambda*t small enough for path enumeration
  const core::Mrm model = models::make_random_mrm(seed, config);

  // Until query: a-states until b-states (plus fallbacks when a seed labels
  // nothing with a/b: use "true" masks so the query is never vacuous).
  std::vector<bool> phi = model.labels().states_with("a");
  std::vector<bool> psi = model.labels().states_with("b");
  bool any_psi = false;
  for (auto v : psi) any_psi = any_psi || v;
  if (!any_psi) psi[seed % config.num_states] = true;
  for (std::size_t s = 0; s < phi.size(); ++s) phi[s] = phi[s] || (s % 2 == 0);

  std::vector<bool> absorb(model.num_states());
  std::vector<bool> dead(model.num_states());
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    absorb[s] = !phi[s] || psi[s];
    dead[s] = !phi[s] && !psi[s];
  }
  const core::Mrm transformed = core::make_absorbing(model, absorb);

  numeric::UniformizationUntilEngine engine(transformed, psi, dead);
  numeric::PathExplorerOptions uopts;
  uopts.truncation_probability = 1e-13;

  numeric::DiscretizationOptions dopts;
  dopts.step = 1.0 / 128.0;  // max exit rate <= ~5 -> d*E << 1

  for (core::StateIndex start = 0; start < model.num_states(); ++start) {
    const auto uni = engine.compute(start, t, r, uopts);
    const auto disc =
        numeric::until_probability_discretization(transformed, psi, start, t, r, dopts);
    // Discretization error is O(d); uniformization error is bounded by the
    // reported truncation bound.
    EXPECT_NEAR(uni.probability, disc.probability, 0.03 + uni.error_bound)
        << "start=" << start;
    EXPECT_GE(uni.probability, -1e-12);
    EXPECT_LE(uni.probability, 1.0 + 1e-12);
    // Both engines' rigorous intervals contain the truth, so they must
    // always overlap — a disjoint pair would prove one error bound wrong.
    const auto uni_bound =
        checker::ProbabilityBound::from_point_error(uni.probability, 0.0, uni.error_bound);
    const auto disc_bound = checker::ProbabilityBound::from_point_error(
        disc.probability, disc.error_bound, disc.error_bound);
    EXPECT_TRUE(uni_bound.overlaps(disc_bound))
        << "start=" << start << ": " << uni_bound.to_string() << " vs "
        << disc_bound.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, EnginesAgree,
                         ::testing::Values(Workload{1, 2.0, 6.0}, Workload{2, 1.0, 3.0},
                                           Workload{3, 2.0, 10.0}, Workload{4, 3.0, 8.0},
                                           Workload{5, 1.5, 4.0}, Workload{6, 2.5, 12.0},
                                           Workload{7, 1.0, 2.0}, Workload{8, 2.0, 20.0},
                                           Workload{9, 1.0, 5.0}, Workload{10, 2.0, 7.0}));

class HugeRewardReducesToP1 : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HugeRewardReducesToP1, RewardEngineMatchesTransientAnalysis) {
  // With r far above any reachable accumulation, the P2 value must equal the
  // time-bounded-until value computed by plain transient analysis.
  const std::uint32_t seed = GetParam();
  models::RandomMrmConfig config;
  config.num_states = 5;
  config.max_rate = 1.2;
  const core::Mrm model = models::make_random_mrm(seed, config);

  std::vector<bool> phi(model.num_states(), true);
  std::vector<bool> psi = model.labels().states_with("c");
  bool any = false;
  for (auto v : psi) any = any || v;
  if (!any) psi[0] = true;

  const double t = 1.5;
  checker::CheckerOptions p2;
  p2.uniformization.truncation_probability = 1e-13;
  const auto bounded = checker::until_probabilities(model, phi, psi, logic::up_to(t),
                                                    logic::up_to(1e8), p2);
  const auto unbounded_reward =
      checker::until_probabilities(model, phi, psi, logic::up_to(t), logic::Interval{});
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    EXPECT_NEAR(bounded[s].probability, unbounded_reward[s].probability,
                1e-6 + bounded[s].error_bound)
        << "seed=" << seed << " state=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HugeRewardReducesToP1, ::testing::Range(1u, 13u));

class ImpulseHeavyEnginesAgree : public ::testing::TestWithParam<Workload> {
 protected:
  void SetUp() override {
    obs::set_stats_enabled(true);
    obs::StatsRegistry::global().reset();
  }
  void TearDown() override {
    obs::StatsRegistry::global().reset();
    obs::set_stats_enabled(false);
  }
};

TEST_P(ImpulseHeavyEnginesAgree, AllThreeEnginesAgreeAndReportStats) {
  // Models where the impulse rewards iota dominate the rate rewards rho:
  // state rewards at most 1, nine of ten transitions carry an impulse. This
  // is the regime the thesis is actually about — both engines must keep
  // agreeing (and with the simulator) when almost all accumulation happens
  // at jumps.
  const auto [seed, t, r] = GetParam();
  models::RandomMrmConfig config;
  config.num_states = 6;
  config.max_rate = 1.0;
  config.max_state_reward = 1;    // rho in {0, 1}
  config.impulse_probability = 0.9;
  config.max_impulse = 2.0;       // iota up to 2, multiples of 1/4
  const core::Mrm model = models::make_random_mrm(seed, config);

  std::vector<bool> phi(model.num_states(), true);
  std::vector<bool> psi = model.labels().states_with("b");
  bool any_psi = false;
  for (auto v : psi) any_psi = any_psi || v;
  if (!any_psi) psi[seed % config.num_states] = true;

  std::vector<bool> dead(model.num_states(), false);  // phi holds everywhere
  const core::Mrm transformed = core::make_absorbing(model, psi);

  numeric::UniformizationUntilEngine engine(transformed, psi, dead);
  numeric::PathExplorerOptions uopts;
  uopts.truncation_probability = 1e-13;

  numeric::DiscretizationOptions dopts;
  dopts.step = 1.0 / 64.0;  // impulses are multiples of 1/4 -> integral levels

  sim::SimulationOptions sopts;
  sopts.samples = 20'000;
  sopts.seed = 1234 + seed;

  for (core::StateIndex start = 0; start < model.num_states(); ++start) {
    const auto uni = engine.compute(start, t, r, uopts);
    const auto disc =
        numeric::until_probability_discretization(transformed, psi, start, t, r, dopts);
    EXPECT_NEAR(uni.probability, disc.probability, 0.03 + uni.error_bound)
        << "start=" << start;
    EXPECT_TRUE(
        checker::ProbabilityBound::from_point_error(uni.probability, 0.0, uni.error_bound)
            .overlaps(checker::ProbabilityBound::from_point_error(
                disc.probability, disc.error_bound, disc.error_bound)))
        << "start=" << start;
    const auto sim_estimate = sim::estimate_until(model, start, phi, psi, logic::up_to(t),
                                                  logic::up_to(r), sopts);
    EXPECT_NEAR(uni.probability, sim_estimate.mean,
                sim_estimate.half_width_95 + 0.02 + uni.error_bound)
        << "start=" << start;
  }

  // All three engines ran instrumented: their stats blocks must be present.
  const auto& registry = obs::StatsRegistry::global();
  EXPECT_EQ(registry.counter("uniformization.calls"),
            static_cast<std::uint64_t>(model.num_states()));
  EXPECT_EQ(registry.counter("discretization.calls"),
            static_cast<std::uint64_t>(model.num_states()));
  EXPECT_GE(registry.counter("uniformization.paths_visited"),
            registry.counter("uniformization.paths_truncated"));
  EXPECT_GE(registry.counter("discretization.time_steps"), 1u);
  EXPECT_EQ(registry.counter("sim.samples"),
            static_cast<std::uint64_t>(sopts.samples) * model.num_states());
  const obs::TraceNode trace = registry.trace();
  EXPECT_NE(trace.find("uniformization.until"), nullptr);
  EXPECT_NE(trace.find("discretization.until"), nullptr);
  EXPECT_NE(trace.find("sim.estimate_until"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(ImpulseDominatedModels, ImpulseHeavyEnginesAgree,
                         ::testing::Values(Workload{21, 1.0, 2.0}, Workload{22, 1.5, 3.0},
                                           Workload{23, 2.0, 5.0}, Workload{24, 1.0, 4.0},
                                           Workload{25, 1.5, 6.0}));

TEST(CrossValidation, AggregationAblationIsExactOnRandomModels) {
  // Per-path Omega evaluation and per-signature aggregation must agree to
  // machine precision (they sum the same terms in different orders).
  for (std::uint32_t seed : {3u, 11u, 27u}) {
    models::RandomMrmConfig config;
    config.num_states = 5;
    config.max_rate = 1.0;
    const core::Mrm model = models::make_random_mrm(seed, config);
    std::vector<bool> psi(model.num_states(), false);
    psi[1] = true;
    std::vector<bool> dead(model.num_states(), false);
    std::vector<bool> absorb = psi;
    const core::Mrm transformed = core::make_absorbing(model, absorb);
    numeric::UniformizationUntilEngine engine(transformed, psi, dead);
    numeric::PathExplorerOptions aggregated;
    aggregated.truncation_probability = 1e-11;
    numeric::PathExplorerOptions per_path = aggregated;
    per_path.aggregate_signatures = false;
    const auto a = engine.compute(0, 1.0, 5.0, aggregated);
    const auto b = engine.compute(0, 1.0, 5.0, per_path);
    EXPECT_NEAR(a.probability, b.probability, 1e-12) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(a.error_bound, b.error_bound);
    EXPECT_LE(a.signature_classes, b.signature_classes);
  }
}

}  // namespace
}  // namespace csrlmrm

// The explicit-state NMR model and its lumping to the counter abstraction.
#include "models/explicit_nmr.hpp"

#include <gtest/gtest.h>

#include "checker/sat.hpp"
#include "checker/steady.hpp"
#include "core/lumping.hpp"
#include "logic/parser.hpp"

namespace csrlmrm::models {
namespace {

TmrConfig small_config() {
  TmrConfig config;
  config.num_modules = 4;
  config.variable_failure_rate = true;  // what independent modules mean
  return config;
}

TEST(ExplicitNmr, HasExponentialStateSpace) {
  const core::Mrm model = make_explicit_nmr(small_config());
  EXPECT_EQ(model.num_states(), (1u << 4) * 2u);
}

TEST(ExplicitNmr, PerModuleTransitionsExist) {
  const TmrConfig config = small_config();
  const core::Mrm model = make_explicit_nmr(config);
  const auto all_up = explicit_nmr_state(0, false, 4);
  // Four independent failure edges out of the all-up state plus the voter.
  EXPECT_EQ(model.rates().transitions(all_up).size(), 5u);
  EXPECT_DOUBLE_EQ(model.rates().rate(all_up, explicit_nmr_state(0b0001, false, 4)),
                   config.module_failure_rate);
  EXPECT_DOUBLE_EQ(model.rates().rate(all_up, explicit_nmr_state(0b1000, false, 4)),
                   config.module_failure_rate);
  // Repair fixes the lowest-index failed module and pays the impulse.
  const auto two_failed = explicit_nmr_state(0b0110, false, 4);
  EXPECT_DOUBLE_EQ(model.rates().rate(two_failed, explicit_nmr_state(0b0100, false, 4)),
                   config.module_repair_rate);
  EXPECT_DOUBLE_EQ(model.impulse_reward(two_failed, explicit_nmr_state(0b0100, false, 4)),
                   config.module_repair_impulse);
}

TEST(ExplicitNmr, LumpsToTheCounterModel) {
  const core::Mrm model = make_explicit_nmr(small_config());
  const core::Lumping lumping = core::compute_lumping(model);
  // N+1 module-count blocks plus one voter-down block.
  EXPECT_EQ(lumping.num_blocks, 4u + 2u);
  // All states with the same failed count share a block.
  EXPECT_EQ(lumping.block_of[explicit_nmr_state(0b0011, false, 4)],
            lumping.block_of[explicit_nmr_state(0b1100, false, 4)]);
  // Every voter-down state lumps together regardless of the module mask.
  EXPECT_EQ(lumping.block_of[explicit_nmr_state(0b0000, true, 4)],
            lumping.block_of[explicit_nmr_state(0b1111, true, 4)]);
}

TEST(ExplicitNmr, QuotientMatchesMakeTmrNumerically) {
  const TmrConfig config = small_config();
  const core::Mrm explicit_model = make_explicit_nmr(config);
  const core::Mrm quotient = core::lump(explicit_model);
  const core::Mrm counter = make_tmr(config);
  ASSERT_EQ(quotient.num_states(), counter.num_states());

  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-10;
  checker::ModelChecker quotient_checker(quotient, options);
  checker::ModelChecker counter_checker(counter, options);

  const auto formula = logic::parse_formula("P(>0.1)[TT U[0,100][0,2000] allUp]");
  const auto quotient_values = quotient_checker.path_probabilities(formula);
  const auto counter_values = counter_checker.path_probabilities(formula);

  // Match states through their unique "<k>up"/"vdown" labels.
  for (unsigned working = 0; working <= 4; ++working) {
    const std::string label = std::to_string(working) + "up";
    const auto quotient_mask = quotient.labels().states_with(label);
    const auto counter_mask = counter.labels().states_with(label);
    core::StateIndex qs = 0;
    core::StateIndex cs = 0;
    for (core::StateIndex s = 0; s < quotient.num_states(); ++s) {
      if (quotient_mask[s]) qs = s;
      if (counter_mask[s]) cs = s;
    }
    EXPECT_NEAR(quotient_values[qs].probability, counter_values[cs].probability, 1e-9)
        << label;
  }
}

TEST(ExplicitNmr, SteadyStateAggregatesToCounterModel) {
  const TmrConfig config = small_config();
  const core::Mrm explicit_model = make_explicit_nmr(config);
  const core::Mrm counter = make_tmr(config);

  const auto explicit_failed = checker::steady_state_probability_of_set(
      explicit_model, explicit_model.labels().states_with("failed"));
  const auto counter_failed = checker::steady_state_probability_of_set(
      counter, counter.labels().states_with("failed"));
  EXPECT_NEAR(explicit_failed[explicit_nmr_state(0, false, 4)], counter_failed[0], 1e-8);
}

TEST(ExplicitNmr, RejectsOutOfRangeModuleCounts) {
  TmrConfig config;
  config.num_modules = 0;
  EXPECT_THROW(make_explicit_nmr(config), std::invalid_argument);
  config.num_modules = 17;
  EXPECT_THROW(make_explicit_nmr(config), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::models

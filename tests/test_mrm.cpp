// Mrm construction and validation (Definition 3.1).
#include "core/mrm.hpp"

#include <gtest/gtest.h>

#include "models/wavelan.hpp"

namespace csrlmrm::core {
namespace {

Ctmc tiny_ctmc() {
  RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  rates.add(1, 0, 2.0);
  Labeling labels(2);
  labels.add(0, "a");
  return Ctmc(rates.build(), std::move(labels));
}

TEST(Mrm, StoresStateAndImpulseRewards) {
  ImpulseRewardsBuilder impulses(2);
  impulses.add(0, 1, 0.5);
  const Mrm model(tiny_ctmc(), {3.0, 4.0}, impulses.build());
  EXPECT_DOUBLE_EQ(model.state_reward(0), 3.0);
  EXPECT_DOUBLE_EQ(model.state_reward(1), 4.0);
  EXPECT_DOUBLE_EQ(model.impulse_reward(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(model.impulse_reward(1, 0), 0.0);
  EXPECT_TRUE(model.has_impulse_rewards());
}

TEST(Mrm, NoImpulseConstructorYieldsZeroImpulses) {
  const Mrm model(tiny_ctmc(), {1.0, 2.0});
  EXPECT_DOUBLE_EQ(model.impulse_reward(0, 1), 0.0);
  EXPECT_FALSE(model.has_impulse_rewards());
}

TEST(Mrm, RejectsWrongRewardCount) {
  EXPECT_THROW(Mrm(tiny_ctmc(), {1.0}), std::invalid_argument);
  EXPECT_THROW(Mrm(tiny_ctmc(), {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Mrm, RejectsNegativeStateReward) {
  EXPECT_THROW(Mrm(tiny_ctmc(), {-1.0, 0.0}), std::invalid_argument);
}

TEST(Mrm, RejectsImpulseOnMissingTransition) {
  // No transition 1 -> 1 nor 0 -> 0 exists, and (1,0) exists but (0,0) not.
  linalg::CsrBuilder impulses(2, 2);
  impulses.add(1, 1, 0.5);
  EXPECT_THROW(Mrm(tiny_ctmc(), {1.0, 2.0}, impulses.build()), std::invalid_argument);
}

TEST(Mrm, RejectsImpulseOnSelfLoop) {
  // Definition 3.1: R(s,s) > 0 requires iota(s,s) = 0.
  RateMatrixBuilder rates(1);
  rates.add(0, 0, 1.0);
  Labeling labels(1);
  linalg::CsrBuilder impulses(1, 1);
  impulses.add(0, 0, 0.25);
  EXPECT_THROW(Mrm(Ctmc(rates.build(), std::move(labels)), {0.0}, impulses.build()),
               std::invalid_argument);
}

TEST(Mrm, RejectsImpulseShapeMismatch) {
  linalg::CsrBuilder impulses(3, 3);
  EXPECT_THROW(Mrm(tiny_ctmc(), {1.0, 2.0}, impulses.build()), std::invalid_argument);
}

TEST(Mrm, WavelanExampleCarriesThesisRewards) {
  const Mrm model = models::make_wavelan();
  ASSERT_EQ(model.num_states(), 5u);
  // Example 3.1 values.
  EXPECT_DOUBLE_EQ(model.state_reward(models::kWavelanOff), 0.0);
  EXPECT_DOUBLE_EQ(model.state_reward(models::kWavelanSleep), 80.0);
  EXPECT_DOUBLE_EQ(model.state_reward(models::kWavelanIdle), 1319.0);
  EXPECT_DOUBLE_EQ(model.state_reward(models::kWavelanReceive), 1675.0);
  EXPECT_DOUBLE_EQ(model.state_reward(models::kWavelanTransmit), 1425.0);
  EXPECT_NEAR(model.impulse_reward(models::kWavelanOff, models::kWavelanSleep), 0.02, 1e-12);
  EXPECT_NEAR(model.impulse_reward(models::kWavelanSleep, models::kWavelanIdle), 0.32975,
              1e-12);
  EXPECT_NEAR(model.impulse_reward(models::kWavelanIdle, models::kWavelanReceive), 0.42545,
              1e-12);
  EXPECT_NEAR(model.impulse_reward(models::kWavelanIdle, models::kWavelanTransmit), 0.36195,
              1e-12);
  EXPECT_DOUBLE_EQ(model.impulse_reward(models::kWavelanReceive, models::kWavelanIdle), 0.0);
}

TEST(ImpulseRewardsBuilder, RejectsNegativeReward) {
  ImpulseRewardsBuilder builder(2);
  EXPECT_THROW(builder.add(0, 1, -0.1), std::invalid_argument);
}

TEST(Ctmc, RejectsLabelingSizeMismatch) {
  RateMatrixBuilder rates(2);
  Labeling labels(3);
  EXPECT_THROW(Ctmc(rates.build(), std::move(labels)), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::core

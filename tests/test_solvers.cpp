// Gauss-Seidel, Jacobi, and dense Gaussian elimination, cross-validated.
#include <gtest/gtest.h>

#include <stdexcept>

#include "linalg/csr_matrix.hpp"
#include "linalg/dense_solve.hpp"
#include "linalg/gauss_seidel.hpp"
#include "linalg/jacobi.hpp"

namespace csrlmrm::linalg {
namespace {

CsrMatrix diagonally_dominant() {
  // [ 4 -1  0 ]
  // [-1  4 -1 ]
  // [ 0 -1  4 ]
  CsrBuilder builder(3, 3);
  builder.add(0, 0, 4.0);
  builder.add(0, 1, -1.0);
  builder.add(1, 0, -1.0);
  builder.add(1, 1, 4.0);
  builder.add(1, 2, -1.0);
  builder.add(2, 1, -1.0);
  builder.add(2, 2, 4.0);
  return builder.build();
}

TEST(GaussSeidel, SolvesDiagonallyDominantSystem) {
  const CsrMatrix A = diagonally_dominant();
  const std::vector<double> b{3.0, 2.0, 3.0};
  std::vector<double> x(3, 0.0);
  const auto result = gauss_seidel_solve(A, b, x);
  EXPECT_TRUE(result.converged);
  // Verify residual instead of pinning the solution.
  const auto Ax = A.multiply(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(Ax[i], b[i], 1e-9);
}

TEST(GaussSeidel, RejectsZeroDiagonal) {
  CsrBuilder builder(2, 2);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 1.0);
  std::vector<double> x(2, 0.0);
  EXPECT_THROW(gauss_seidel_solve(builder.build(), {1.0, 1.0}, x), std::invalid_argument);
}

TEST(GaussSeidel, RejectsShapeMismatch) {
  std::vector<double> x(3, 0.0);
  EXPECT_THROW(gauss_seidel_solve(diagonally_dominant(), {1.0}, x), std::invalid_argument);
}

TEST(GaussSeidel, ReportsNonConvergenceViaIterationCap) {
  const CsrMatrix A = diagonally_dominant();
  std::vector<double> x(3, 100.0);
  IterativeOptions options;
  options.max_iterations = 1;
  options.tolerance = 1e-300;
  const auto result = gauss_seidel_solve(A, {1.0, 1.0, 1.0}, x, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 1u);
}

TEST(Jacobi, AgreesWithGaussSeidel) {
  const CsrMatrix A = diagonally_dominant();
  const std::vector<double> b{1.0, -2.0, 0.5};
  std::vector<double> x_gs(3, 0.0);
  std::vector<double> x_j(3, 0.0);
  ASSERT_TRUE(gauss_seidel_solve(A, b, x_gs).converged);
  ASSERT_TRUE(jacobi_solve(A, b, x_j).converged);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x_gs[i], x_j[i], 1e-9);
}

TEST(DenseSolve, MatchesIterativeSolvers) {
  const CsrMatrix A = diagonally_dominant();
  const std::vector<double> b{1.0, -2.0, 0.5};
  std::vector<double> x_gs(3, 0.0);
  ASSERT_TRUE(gauss_seidel_solve(A, b, x_gs).converged);
  const auto x_dense = dense_solve(A, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x_gs[i], x_dense[i], 1e-9);
}

TEST(DenseSolve, HandlesPivoting) {
  // Leading zero forces a row swap.
  const std::vector<std::vector<double>> A{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = dense_solve(A, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(DenseSolve, RejectsSingularMatrix) {
  const std::vector<std::vector<double>> A{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(dense_solve(A, {1.0, 2.0}), std::domain_error);
}

TEST(SteadyStateGaussSeidel, TwoStateChainHasClosedForm) {
  // 0 -> 1 at rate a, 1 -> 0 at rate b: pi = (b, a) / (a+b).
  const double a = 2.0;
  const double b = 3.0;
  CsrBuilder q(2, 2);
  q.add(0, 0, -a);
  q.add(0, 1, a);
  q.add(1, 0, b);
  q.add(1, 1, -b);
  const auto pi = steady_state_gauss_seidel(q.build());
  EXPECT_NEAR(pi[0], b / (a + b), 1e-10);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-10);
}

TEST(SteadyStateGaussSeidel, SingleStateIsPointMass) {
  CsrBuilder q(1, 1);
  const auto pi = steady_state_gauss_seidel(q.build());
  ASSERT_EQ(pi.size(), 1u);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

TEST(SteadyStateGaussSeidel, RejectsAbsorbingStateInMultiStateChain) {
  CsrBuilder q(2, 2);
  q.add(0, 0, -1.0);
  q.add(0, 1, 1.0);
  // state 1 has no exit: not irreducible
  EXPECT_THROW(steady_state_gauss_seidel(q.build()), std::invalid_argument);
}

TEST(SteadyStateGaussSeidel, ThreeStateCycleBalancesFlows) {
  // 0 -> 1 -> 2 -> 0 with distinct rates; pi_i proportional to 1/rate_i.
  CsrBuilder q(3, 3);
  const double rates[3] = {1.0, 2.0, 4.0};
  for (int i = 0; i < 3; ++i) {
    q.add(i, (i + 1) % 3, rates[i]);
    q.add(i, i, -rates[i]);
  }
  const auto pi = steady_state_gauss_seidel(q.build());
  const double total = 1.0 / 1.0 + 1.0 / 2.0 + 1.0 / 4.0;
  EXPECT_NEAR(pi[0], (1.0 / 1.0) / total, 1e-10);
  EXPECT_NEAR(pi[1], (1.0 / 2.0) / total, 1e-10);
  EXPECT_NEAR(pi[2], (1.0 / 4.0) / total, 1e-10);
}

}  // namespace
}  // namespace csrlmrm::linalg

// Ordinary lumpability: partition correctness, quotient construction, and
// preservation of checker results.
#include "core/lumping.hpp"

#include <gtest/gtest.h>

#include "checker/sat.hpp"
#include "checker/steady.hpp"
#include "checker/until.hpp"
#include "logic/parser.hpp"
#include "models/wavelan.hpp"

namespace csrlmrm::core {
namespace {

/// A model with two interchangeable worker branches: 0 dispatches to 1 or 2
/// (identical twins: same labels, rewards, rates, impulses), both return to
/// 0 and may fail into 3.
Mrm symmetric_workers() {
  RateMatrixBuilder rates(4);
  rates.add(0, 1, 1.5);
  rates.add(0, 2, 1.5);
  rates.add(1, 0, 2.0);
  rates.add(2, 0, 2.0);
  rates.add(1, 3, 0.1);
  rates.add(2, 3, 0.1);
  ImpulseRewardsBuilder impulses(4);
  impulses.add(0, 1, 0.5);
  impulses.add(0, 2, 0.5);
  Labeling labels(4);
  labels.add(0, "idle");
  labels.add(1, "work");
  labels.add(2, "work");
  labels.add(3, "down");
  return Mrm(Ctmc(rates.build(), std::move(labels)), {0.0, 3.0, 3.0, 1.0}, impulses.build());
}

TEST(Lumping, MergesInterchangeableTwins) {
  const Mrm model = symmetric_workers();
  const Lumping lumping = compute_lumping(model);
  EXPECT_EQ(lumping.num_blocks, 3u);
  EXPECT_EQ(lumping.block_of[1], lumping.block_of[2]);
  EXPECT_NE(lumping.block_of[0], lumping.block_of[1]);
  EXPECT_NE(lumping.block_of[0], lumping.block_of[3]);
}

TEST(Lumping, QuotientAggregatesRates) {
  const Mrm model = symmetric_workers();
  const Lumping lumping = compute_lumping(model);
  const Mrm quotient = build_quotient(model, lumping);
  ASSERT_EQ(quotient.num_states(), 3u);
  const std::size_t idle = lumping.block_of[0];
  const std::size_t work = lumping.block_of[1];
  EXPECT_DOUBLE_EQ(quotient.rates().rate(idle, work), 3.0);  // 1.5 + 1.5
  EXPECT_DOUBLE_EQ(quotient.impulse_reward(idle, work), 0.5);
  EXPECT_DOUBLE_EQ(quotient.state_reward(work), 3.0);
  EXPECT_TRUE(quotient.labels().has(work, "work"));
}

TEST(Lumping, DifferentRewardsPreventMerging) {
  Mrm model = symmetric_workers();
  // Rebuild with asymmetric rewards on the twins.
  RateMatrixBuilder rates(4);
  for (StateIndex s = 0; s < 4; ++s) {
    for (const auto& e : model.rates().transitions(s)) rates.add(s, e.col, e.value);
  }
  Labeling labels(4);
  for (StateIndex s = 0; s < 4; ++s) {
    for (const auto& ap : model.labels().labels_of(s)) labels.add(s, ap);
  }
  ImpulseRewardsBuilder impulses(4);
  impulses.add(0, 1, 0.5);
  impulses.add(0, 2, 0.5);
  const Mrm asymmetric(Ctmc(rates.build(), std::move(labels)), {0.0, 3.0, 4.0, 1.0},
                       impulses.build());
  EXPECT_EQ(compute_lumping(asymmetric).num_blocks, 4u);
}

TEST(Lumping, DifferentImpulsesPreventMerging) {
  RateMatrixBuilder rates(3);
  rates.add(0, 1, 1.0);
  rates.add(0, 2, 1.0);
  ImpulseRewardsBuilder impulses(3);
  impulses.add(0, 1, 1.0);  // twin 2 gets no impulse
  const Mrm model(Ctmc(rates.build(), Labeling(3)), std::vector<double>(3, 0.0),
                  impulses.build());
  // 1 and 2 are both absorbing, unlabeled, zero reward — by outgoing
  // signatures alone they would merge, but state 0 reaches them with
  // different impulse values, so the incoming-impulse refinement must keep
  // them apart (a merged block would change the reward distribution).
  const Lumping lumping = compute_lumping(model);
  EXPECT_NE(lumping.block_of[1], lumping.block_of[2]);
  EXPECT_EQ(lumping.num_blocks, 3u);
  EXPECT_NO_THROW(build_quotient(model, lumping));
}

TEST(Lumping, IntraBlockImpulseForcesSplit) {
  // Twins 0 and 1 exchange impulse-carrying transitions; merging them would
  // require an impulse self-loop, so they must stay separate.
  RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  rates.add(1, 0, 1.0);
  ImpulseRewardsBuilder impulses(2);
  impulses.add(0, 1, 0.25);
  impulses.add(1, 0, 0.25);
  const Mrm model(Ctmc(rates.build(), Labeling(2)), std::vector<double>(2, 0.0),
                  impulses.build());
  const Lumping lumping = compute_lumping(model);
  EXPECT_EQ(lumping.num_blocks, 2u);
}

TEST(Lumping, WavelanIsAlreadyMinimal) {
  const Mrm model = models::make_wavelan();
  EXPECT_EQ(compute_lumping(model).num_blocks, 5u);
}

TEST(Lumping, QuotientPreservesCheckerResults) {
  const Mrm model = symmetric_workers();
  const Lumping lumping = compute_lumping(model);
  const Mrm quotient = build_quotient(model, lumping);

  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-10;
  checker::ModelChecker original(model, options);
  checker::ModelChecker reduced(quotient, options);

  for (const char* text : {
           "S(>0.1) work",
           "P(>0.05)[TT U[0,2][0,10] down]",
           "P(>0.2)[idle || work U[0,1.5][0,8] down]",
           "P(>0.3)[X[0,1][0,2] work]",
       }) {
    const auto formula = logic::parse_formula(text);
    const auto& sat_original = original.satisfaction_set(formula);
    const auto& sat_reduced = reduced.satisfaction_set(formula);
    for (StateIndex s = 0; s < model.num_states(); ++s) {
      EXPECT_EQ(sat_original[s], sat_reduced[lumping.block_of[s]])
          << text << " state " << s;
    }
  }

  // And numerically, not just the verdicts. Exact values coincide; the
  // truncated computations may differ by their error bounds (the original
  // model splits each symmetric path in two, so its halves drop below w
  // earlier than the quotient's merged path).
  const auto formula = logic::parse_formula("P(>0.05)[TT U[0,2][0,10] down]");
  const auto original_values = original.path_probabilities(formula);
  const auto reduced_values = reduced.path_probabilities(formula);
  for (StateIndex s = 0; s < model.num_states(); ++s) {
    const auto& a = original_values[s];
    const auto& b = reduced_values[lumping.block_of[s]];
    EXPECT_NEAR(a.probability, b.probability, a.error_bound + b.error_bound + 1e-12)
        << "state " << s;
  }
}

TEST(Lumping, LumpIsIdempotent) {
  const Mrm quotient = lump(symmetric_workers());
  EXPECT_EQ(compute_lumping(quotient).num_blocks, quotient.num_states());
}

TEST(Lumping, RejectsMismatchedLumping) {
  const Mrm model = symmetric_workers();
  Lumping bogus;
  bogus.block_of = {0, 0};  // wrong size
  bogus.num_blocks = 1;
  bogus.representative = {0};
  EXPECT_THROW(build_quotient(model, bogus), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::core

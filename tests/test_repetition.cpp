// In-process repetition: a long-lived process (mrmcheckd) answers the same
// queries hundreds of times with progressively warmer process-lifetime
// caches (PoissonTailCache::global(), SharedOmegaCache::global(), per-plan
// TransformCaches). Every repetition must be bitwise-identical to the first,
// cold-cache run — cache warmth is a speed effect, never a numeric one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker/options.hpp"
#include "core/approx.hpp"
#include "core/mrm.hpp"
#include "logic/parser.hpp"
#include "models/cellphone.hpp"
#include "models/mm1k.hpp"
#include "models/tmr.hpp"
#include "numeric/conditional.hpp"
#include "plan/compiler.hpp"
#include "plan/executor.hpp"

namespace {

using namespace csrlmrm;

struct Workload {
  core::Mrm model;
  logic::FormulaPtr formula;
  plan::FormulaResult baseline;
};

plan::FormulaResult run_once(const core::Mrm& model, const logic::FormulaPtr& formula) {
  const plan::Plan compiled = plan::compile(model, {formula}, checker::CheckerOptions{});
  plan::PlanResult result = plan::execute(compiled, model);
  return std::move(result.formulas[0]);
}

void expect_bitwise_equal(const plan::FormulaResult& got, const plan::FormulaResult& want,
                          int iteration) {
  ASSERT_EQ(got.verdicts.size(), want.verdicts.size()) << "iteration " << iteration;
  for (std::size_t s = 0; s < want.verdicts.size(); ++s) {
    EXPECT_EQ(got.verdicts[s], want.verdicts[s]) << "iteration " << iteration << " state " << s;
  }
  ASSERT_EQ(got.has_probabilities, want.has_probabilities) << "iteration " << iteration;
  if (want.has_probabilities) {
    ASSERT_EQ(got.probabilities.size(), want.probabilities.size());
    for (std::size_t s = 0; s < want.probabilities.size(); ++s) {
      EXPECT_TRUE(core::exactly_equal(got.probabilities[s].probability,
                                      want.probabilities[s].probability))
          << "iteration " << iteration << " state " << s;
      EXPECT_TRUE(core::exactly_equal(got.probabilities[s].error_bound,
                                      want.probabilities[s].error_bound))
          << "iteration " << iteration << " state " << s;
    }
  }
  ASSERT_EQ(got.has_values, want.has_values) << "iteration " << iteration;
  if (want.has_values) {
    ASSERT_EQ(got.values.size(), want.values.size());
    for (std::size_t s = 0; s < want.values.size(); ++s) {
      EXPECT_TRUE(core::exactly_equal(got.values[s], want.values[s]))
          << "iteration " << iteration << " state " << s;
    }
  }
  ASSERT_EQ(got.has_bounds, want.has_bounds) << "iteration " << iteration;
  if (want.has_bounds) {
    ASSERT_EQ(got.bounds.size(), want.bounds.size());
    for (std::size_t s = 0; s < want.bounds.size(); ++s) {
      EXPECT_TRUE(core::exactly_equal(got.bounds[s].lower, want.bounds[s].lower))
          << "iteration " << iteration << " state " << s;
      EXPECT_TRUE(core::exactly_equal(got.bounds[s].upper, want.bounds[s].upper))
          << "iteration " << iteration << " state " << s;
    }
  }
}

/// 500 checks over mixed models in one process. Baselines are computed with
/// the shared Omega cache cleared (the fresh-process state); every later
/// repetition — including the ones served entirely from warm Poisson/Omega
/// tables — must reproduce them double for double.
TEST(Repetition, FiveHundredChecksAreBitwiseStable) {
  std::vector<Workload> workloads;
  const auto add = [&workloads](core::Mrm model, const std::string& text) {
    Workload w{std::move(model), logic::parse_formula(text), {}};
    workloads.push_back(std::move(w));
  };
  add(models::make_tmr(), "P(>0.1)[Sup U[0,10][0,300] failed]");
  add(models::make_tmr(), "S(<0.9) allUp");
  add(models::make_tmr(), "R(<100)[C[0,5]]");
  add(models::make_cellphone(), "P(>0.4)[(Call_Idle || Doze) U[0,24][0,600] Call_Initiated]");
  add(models::make_mm1k(), "P(>0.05)[busy U[0,4][0,40] full]");
  add(models::make_mm1k(), "S(>0.01) full");

  // Fresh-process state: no Omega evaluator predates the baselines.
  numeric::SharedOmegaCache::global().clear();
  for (Workload& workload : workloads) {
    workload.baseline = run_once(workload.model, workload.formula);
  }

  constexpr int kChecks = 500;
  for (int i = 0; i < kChecks; ++i) {
    const Workload& workload = workloads[static_cast<std::size_t>(i) % workloads.size()];
    const plan::FormulaResult repeat = run_once(workload.model, workload.formula);
    expect_bitwise_equal(repeat, workload.baseline, i);
    if (HasFatalFailure()) return;  // one diverged iteration is diagnosis enough
  }
}

}  // namespace

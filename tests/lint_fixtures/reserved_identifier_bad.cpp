// Fixture: reserved-identifier fires on _Uppercase and double-underscore
// names ([lex.name]/3); a single leading underscore before a lowercase letter
// is legal at function/block scope and stays clean.
int _Bad_capital = 1;       // EXPECT-LINT
int bad__middle = 2;        // EXPECT-LINT
int trailing_bad__ = 3;     // EXPECT-LINT

int ok_suppressed__name = 4;  // lint:allow(reserved-identifier)

void ok_scope() {
  int _lower = 5;
  int single_underscore = _lower;
  (void)single_underscore;
}

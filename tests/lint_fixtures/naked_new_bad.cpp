// Fixture: naked-new fires on raw new/delete expressions; deleted special
// members and operator new/delete declarations stay clean.
#include <cstddef>
#include <memory>
#include <vector>

int* bad_alloc() { return new int(3); }       // EXPECT-LINT
void bad_free(int* p) { delete p; }           // EXPECT-LINT
void bad_array_free(int* p) { delete[] p; }   // EXPECT-LINT

struct NoCopy {
  NoCopy() = default;
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};

struct Pooled {
  static void* operator new(std::size_t size);
  static void operator delete(void* p);
};

std::unique_ptr<int> ok_smart() { return std::make_unique<int>(3); }
std::vector<int> ok_container() { return std::vector<int>(8, 0); }
int* ok_suppressed() { return new int(4); }  // lint:allow(naked-new)

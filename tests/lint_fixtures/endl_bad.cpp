// Fixture: endl fires on std::endl; '\n' and explicit flushes stay clean.
#include <iostream>

void bad_flush() { std::cout << "done" << std::endl; }  // EXPECT-LINT

void ok_newline() { std::cout << "done\n"; }
void ok_explicit_flush() { std::cout << "done\n" << std::flush; }
void ok_suppressed() { std::cout << "done" << std::endl; }  // lint:allow(endl)
void ok_string_mention() { std::cout << "std::endl is banned\n"; }

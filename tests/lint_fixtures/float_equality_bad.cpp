// Fixture: float-equality fires on raw ==/!= adjacent to floating-point
// literals, honors allowance comments in both positions, and exempts
// approx_*/exactly_* helper definitions. Each marked line must produce
// exactly this rule's diagnostic; no other line may.
bool bad_eq(double x) { return x == 0.0; }       // EXPECT-LINT
bool bad_ne(double x) { return x != 1.5; }       // EXPECT-LINT
bool bad_reversed(double x) { return 2.0e-3 == x; }  // EXPECT-LINT
bool bad_negated(double x) { return x == -1.0; }     // EXPECT-LINT
bool bad_suffix(double x) { return x != 3.f; }       // EXPECT-LINT

bool ok_trailing_allow(double x) { return x == 0.0; }  // lint:allow(float-equality)

// lint:allow(float-equality)
bool ok_standalone_allow(double x) { return x == 0.0; }

// lint:allow(float-equality) — justification may run across
// several comment-only lines before the code it targets.
bool ok_multiline_allow(double x) { return x == 0.0; }

// Approved helpers may compare exactly: the rule recognizes the prefixes.
bool approx_zero_local(double x) { return x == 0.0; }
bool exactly_one_local(double x) { return x == 1.0; }

bool ok_integer(int x) { return x == 0; }
bool ok_relational(double x) { return x >= 0.0 && x < 1.0; }

// Fixture for the simd-hygiene rule: every raw SIMD spelling outside
// src/core/simd.hpp must be diagnosed — vectorization is confined to the
// DoubleVec layer so scalar and vector builds keep one source of truth.
#include <immintrin.h>  // EXPECT-LINT

typedef double BadVec [[gnu::vector_size(32)]];  // EXPECT-LINT

void raw_intrinsics(double* p) {
  _mm_storeu_pd(p, _mm_loadu_pd(p));  // EXPECT-LINT
}

void raw_pragma(double* p, int n) {
#pragma omp simd  // EXPECT-LINT
  for (int i = 0; i < n; ++i) p[i] = p[i] * 2.0;
}

// lint:allow(simd-hygiene) -- suppression proof: documented exemplar only
typedef double OkVec [[gnu::vector_size(16)]];

// Fixture: unsafe-libm fires on calls to libc/libm entry points with hidden
// global state; reentrant variants and non-call mentions stay clean.
#include <cmath>
#include <cstdlib>
#include <cstring>

double bad_lgamma(double x) { return std::lgamma(x); }  // EXPECT-LINT
int bad_rand() { return rand(); }                       // EXPECT-LINT
int bad_srand() { srand(7); return 0; }                 // EXPECT-LINT
char* bad_strtok(char* s) { return strtok(s, " "); }    // EXPECT-LINT

double ok_reentrant(double x) {
  int sign = 0;
  return lgamma_r(x, &sign);
}
char* ok_reentrant_tok(char* s, char** save) { return strtok_r(s, " ", save); }
int ok_suppressed() { return rand(); }  // lint:allow(unsafe-libm)

// A mention without a call (function pointer naming is rare but legal).
using LgammaPtr = double (*)(double);

// Fixture: pragma-once fires (at line 1) when a header has no #pragma once.
#include <cstddef>

inline std::size_t fixture_header_fn() { return 0; }

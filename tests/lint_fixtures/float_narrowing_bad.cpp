// Fixture: float-narrowing fires on every use of the `float` type; the
// project numeric convention is double end-to-end.
float bad_return_type() {  // EXPECT-LINT
  return 0;
}

double bad_cast(double x) {
  return static_cast<float>(x);  // EXPECT-LINT
}

double ok_suppressed(double x) {
  const float narrowed = static_cast<float>(x);  // lint:allow(float-narrowing)
  return narrowed;
}

double ok_double(double x) { return x; }
int ok_unrelated_name(int floaty) { return floaty; }

// Fixture: a conforming header — #pragma once present, double arithmetic,
// no banned constructs. Must produce zero diagnostics.
#pragma once

#include <cmath>

namespace lint_fixture {

inline double scaled_magnitude(double x, double scale) { return std::fabs(x) * scale; }

}  // namespace lint_fixture

// Fixture: banned-identifier fires on the curated replacement list and on
// unqualified abs (the int overload truncates doubles).
#include <cmath>
#include <cstdio>
#include <cstdlib>

double bad_parse(const char* s) { return atof(s); }      // EXPECT-LINT
int bad_parse_int(const char* s) { return atoi(s); }     // EXPECT-LINT
void bad_format(char* buf) { sprintf(buf, "x"); }        // EXPECT-LINT
double bad_abs(double x) { return abs(x); }              // EXPECT-LINT

double ok_qualified_abs(double x) { return std::abs(x); }
double ok_fabs(double x) { return std::fabs(x); }
double ok_strtod(const char* s) { return strtod(s, nullptr); }
void ok_bounded_format(char* buf, unsigned long n) { snprintf(buf, n, "x"); }
double ok_suppressed(const char* s) { return atof(s); }  // lint:allow(banned-identifier)
int ok_member_named_abs(int abs) { return abs; }

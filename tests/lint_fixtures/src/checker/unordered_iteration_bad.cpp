// Fixture: unordered-iteration fires on range-fors and begin()/end() walks
// over unordered containers inside deterministic subsystems (the virtual
// path places this file in src/checker/). Lookup-only use stays clean.
#include <map>
#include <unordered_map>
#include <unordered_set>

double bad_range_for(const std::unordered_map<int, double>& weights) {
  double acc = 0.0;
  for (const auto& [key, value] : weights) {  // EXPECT-LINT
    acc += value + static_cast<double>(key);
  }
  return acc;
}

int bad_iterator_walk() {
  std::unordered_set<int> seen = {1, 2, 3};
  int total = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // EXPECT-LINT, EXPECT-LINT
    total += *it;
  }
  return total;
}

double ok_suppressed(const std::unordered_map<int, double>& weights) {
  double acc = 0.0;
  for (const auto& [key, value] : weights) {  // lint:allow(unordered-iteration)
    acc += value + static_cast<double>(key);
  }
  return acc;
}

double ok_lookup_only(const std::unordered_map<int, double>& weights, int key) {
  const auto it = weights.find(key);
  return it == weights.end() ? 0.0 : it->second;  // lint:allow(unordered-iteration)
}

// Distinct name on purpose: the rule tracks declared identifiers per file, so
// reusing `weights` here would (correctly, per the heuristic's contract)
// still flag this ordered map.
double ok_ordered_map(const std::map<int, double>& ordered_weights) {
  double acc = 0.0;
  for (const auto& [key, value] : ordered_weights) {
    acc += value + static_cast<double>(key);
  }
  return acc;
}

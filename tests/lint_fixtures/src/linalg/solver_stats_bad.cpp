// Fixture: solver-stats fires on a looping *solve* function without obs::
// instrumentation (the virtual path places this file in src/linalg/).
// Instrumented and suppressed solvers stay clean, as do non-solver loops.
namespace obs {
struct ScopedTimer {
  explicit ScopedTimer(const char*) {}
};
void counter_add(const char*) {}
}  // namespace obs

int iterative_solve_bad(int n) {  // EXPECT-LINT
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += i;
  return acc;
}

int iterative_solve_ok(int n) {
  obs::ScopedTimer timer("solver.fixture");
  obs::counter_add("solver.fixture.calls");
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += i;
  return acc;
}

int quiet_solve(int n) {  // lint:allow(solver-stats)
  int acc = 0;
  while (n > 0) acc += n--;
  return acc;
}

int ok_plain_accumulate(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += i;
  return acc;
}

int ok_loopless_solve(int n) { return n + 1; }

// Fixture for lock-hygiene: members annotated lint:guarded_by(<mutex>) read
// and written outside a lock scope on that mutex. The path carries
// src/daemon/ so the fixture classifies as daemon code.
#include <cstddef>
#include <deque>
#include <mutex>

namespace fixture {

class WorkQueue {
 public:
  void push(int job) {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(job);  // covered: inside the guard's scope
    ++depth_;
  }

  void push_racy(int job) {
    queue_.push_back(job);  // EXPECT-LINT lock-hygiene
    ++depth_;               // EXPECT-LINT lock-hygiene
  }

  std::size_t depth_racy() const {
    return depth_;  // EXPECT-LINT lock-hygiene
  }

  std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return depth_;
  }

  // The *_locked convention: callers hold the lock; the helper is exempt.
  std::size_t depth_locked() const { return depth_; }

  // Documented single-threaded setup phase: suppression must work.
  void prefill(int job) {
    queue_.push_back(job);  // lint:allow(lock-hygiene)
  }

 private:
  mutable std::mutex mutex_;
  std::deque<int> queue_;    // lint:guarded_by(mutex_)
  std::size_t depth_ = 0;    // lint:guarded_by(mutex_)
};

}  // namespace fixture

// Fixture for syscall-hygiene: raw socket calls missing the daemon's
// hard-won defenses — ::send without MSG_NOSIGNAL (SIGPIPE kills the
// process) and ::read/::accept loops without an EINTR retry (a stray signal
// reads as connection loss). The <sys/socket.h> include is the rule's scope
// gate; the src/daemon/ path segment classifies the fixture as daemon code.
#include <sys/socket.h>

#include <cerrno>
#include <cstddef>

namespace fixture {

void send_unprotected(int fd, const char* data, std::size_t size) {
  ::send(fd, data, size, 0);  // EXPECT-LINT syscall-hygiene
}

void send_protected(int fd, const char* data, std::size_t size) {
  ::send(fd, data, size, MSG_NOSIGNAL);
}

long read_fragile(int fd, char* buffer, std::size_t size) {
  return ::read(fd, buffer, size);  // EXPECT-LINT syscall-hygiene
}

long read_robust(int fd, char* buffer, std::size_t size) {
  for (;;) {
    const long got = ::read(fd, buffer, size);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

int accept_fragile(int fd) {
  return ::accept(fd, nullptr, nullptr);  // EXPECT-LINT syscall-hygiene
}

// Documented one-shot CLI path where SIGPIPE is acceptable: suppression
// must silence the rule.
void send_suppressed(int fd, const char* data, std::size_t size) {
  ::send(fd, data, size, 0);  // lint:allow(syscall-hygiene)
}

}  // namespace fixture

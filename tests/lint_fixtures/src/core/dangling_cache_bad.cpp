// Fixture for dangling-cache-reference: an LRU-style cache whose accessors
// return references/pointers into the evicted map — the PR 8 TransformCache
// bug reintroduced in miniature. The path carries src/core/ so the fixture
// classifies as Tree::kSrc, where the rule applies.
#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace fixture {

struct Model {
  std::string name;
};

class LruCache {
 public:
  const Model& lookup(int key) {
    const auto found = entries_.find(key);
    return found->second;  // EXPECT-LINT dangling-cache-reference
  }

  const Model* lookup_ptr(int key) {
    return &entries_[key];  // EXPECT-LINT dangling-cache-reference
  }

  // Safe shape: ownership leaves the cache before eviction can run.
  std::shared_ptr<const Model> lookup_shared(int key) {
    const auto found = shared_entries_.find(key);
    return found->second;
  }

  void evict_one() {
    if (!entries_.empty()) entries_.erase(entries_.begin());
  }

  // Documented-unsafe escape hatch: the suppression must silence the rule.
  const Model& unsafe_lookup(int key) {
    return entries_.at(key);  // lint:allow(dangling-cache-reference)
  }

 private:
  std::map<int, Model> entries_;
  std::map<int, std::shared_ptr<const Model>> shared_entries_;
};

}  // namespace fixture

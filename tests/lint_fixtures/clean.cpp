// Fixture: known-good corpus. Near-misses for every rule that must all stay
// clean — comments and string literals mentioning banned constructs, integer
// comparisons, ordered-map iteration, reentrant libm, smart pointers,
// tolerance helpers with the approved prefixes.
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lint_fixture {

// Commented-out violations must not fire: rand(); x == 0.0; new int(3);
// std::endl; float y; lgamma(x); sprintf(buf, "x");

inline bool approx_eq_local(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;  // comparisons belong in approx_* helpers
}

inline bool exactly_zero_local(double x) { return x == 0.0; }

double fold_ordered(const std::map<int, double>& weights) {
  double acc = 0.0;
  for (const auto& [key, value] : weights) acc += value + static_cast<double>(key);
  return acc;
}

double reentrant_log_gamma(double x) {
  int sign = 0;
  return lgamma_r(x, &sign);
}

std::unique_ptr<std::vector<double>> owned_buffer(std::size_t n) {
  return std::make_unique<std::vector<double>>(n, 0.0);
}

std::string mentions_in_strings() {
  return std::string("rand() == 0.0 new delete std::endl float lgamma __reserved");
}

int integer_compares(int a, int b) { return a == b ? a : (a != 0 ? b : 0); }

bool double_compares_without_literals(double a, double b) {
  // A raw a == b between two double identifiers is below the lexical rule's
  // detection floor (documented limitation); keep this corpus honest by
  // using the helper instead.
  return approx_eq_local(a, b, 1e-12);
}

void bounded_io(char* buf, std::size_t n) { snprintf(buf, n, "%d", 7); }

}  // namespace lint_fixture

// Fixture: a file-wide allowance silences pragma-once for this header.
// lint:allow-file(pragma-once)
#include <cstddef>

inline std::size_t fixture_suppressed_header_fn() { return 0; }

// Bitwise cross-validation of the portable SIMD layer (core/simd.hpp)
// against hand-written scalar spellings — the contract the header promises:
// every operation is elementwise with no reassociation and no fused
// multiply-add contraction, so the vectorized loop and the plain scalar
// loop agree bit for bit on every element, including the remainder tail.
//
// Inputs are harvested from 60 seeded random impulse-reward MRMs (exit
// rates, transition rates, embedded-jump probabilities, state and impulse
// rewards) so the magnitudes exercised are exactly what the Omega/Poisson/
// transient kernels feed these helpers, with signed zeros, denormals and
// huge values appended on top. Comparison is by memcmp of the double's bit
// pattern, not ==, so a -0.0 vs +0.0 or NaN-payload drift would fail.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/simd.hpp"
#include "models/random_mrm.hpp"

namespace csrlmrm {
namespace {

/// The scalar spellings the kernels must match exactly. Kept textually
/// identical to the remainder loops in core/simd.hpp on purpose: the test
/// pins the vector body to them, element for element.
void axpy_scalar(double* dst, const double* src, std::size_t count, double a) {
  for (std::size_t i = 0; i < count; ++i) dst[i] += a * src[i];
}

void scale_scalar(double* dst, const double* src, std::size_t count, double a) {
  for (std::size_t i = 0; i < count; ++i) dst[i] = a * src[i];
}

void fill_affine_scalar(double* dst, std::size_t count, std::size_t first, double scale,
                        double offset) {
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] = static_cast<double>(first + i) * scale + offset;
  }
}

void expect_bitwise_equal(const std::vector<double>& simd, const std::vector<double>& scalar,
                          const char* kernel, std::size_t count, double a) {
  ASSERT_EQ(simd.size(), scalar.size());
  for (std::size_t i = 0; i < simd.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&simd[i], &scalar[i], sizeof(double)))
        << kernel << " diverges at i=" << i << " (count=" << count << ", a=" << a
        << "): " << simd[i] << " vs " << scalar[i];
  }
}

/// Every double an engine would feed the kernels for this model: exit rates,
/// raw transition rates, embedded-DTMC jump probabilities, state rewards and
/// impulse rewards — plus the edge values vectorization is most likely to
/// mishandle (signed zero, denormals, values whose product overflows).
std::vector<double> harvest(const core::Mrm& model) {
  std::vector<double> data;
  const core::RateMatrix& rates = model.rates();
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    data.push_back(rates.exit_rate(s));
    data.push_back(model.state_reward(s));
    for (const auto& entry : rates.matrix().row(s)) {
      data.push_back(entry.value);
      if (rates.exit_rate(s) > 0.0) data.push_back(entry.value / rates.exit_rate(s));
    }
    for (const auto& entry : model.impulse_rewards().row(s)) {
      data.push_back(entry.value);
    }
  }
  data.push_back(0.0);
  data.push_back(-0.0);
  data.push_back(std::numeric_limits<double>::denorm_min());
  data.push_back(-std::numeric_limits<double>::denorm_min());
  data.push_back(std::numeric_limits<double>::min());
  data.push_back(1e308);
  data.push_back(-1e308);
  return data;
}

core::Mrm make_model(std::uint32_t seed) {
  models::RandomMrmConfig config;
  config.num_states = 5 + seed % 8;
  return models::make_random_mrm(seed, config);
}

/// Counts straddling every lane boundary of the 4-wide vector body: empty,
/// pure-remainder (< kLanes), exactly one vector, vector + partial tail.
std::vector<std::size_t> interesting_counts(std::size_t max) {
  std::vector<std::size_t> counts;
  for (const std::size_t c : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{4}, std::size_t{5}, std::size_t{7}, std::size_t{8},
                              std::size_t{13}, max}) {
    if (c <= max) counts.push_back(c);
  }
  return counts;
}

class SimdKernels : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SimdKernels, AxpyMatchesTheScalarSpellingBitwise) {
  const std::uint32_t seed = GetParam();
  const std::vector<double> data = harvest(make_model(seed));
  ASSERT_GE(data.size(), 8u);
  const double scales[] = {data[seed % data.size()], -data[(seed + 3) % data.size()],
                           0.0, -0.0, 1e308};
  for (const double a : scales) {
    for (const std::size_t count : interesting_counts(data.size())) {
      // dst starts from a rotated copy of the harvest so the accumulate path
      // (+=) mixes two unrelated model-derived values per element.
      std::vector<double> dst_simd(count), dst_scalar(count);
      for (std::size_t i = 0; i < count; ++i) {
        dst_simd[i] = dst_scalar[i] = data[(i + 5) % data.size()];
      }
      core::simd::axpy(dst_simd.data(), data.data(), count, a);
      axpy_scalar(dst_scalar.data(), data.data(), count, a);
      expect_bitwise_equal(dst_simd, dst_scalar, "axpy", count, a);
    }
  }
}

TEST_P(SimdKernels, ScaleMatchesTheScalarSpellingBitwiseIncludingAliased) {
  const std::uint32_t seed = GetParam();
  const std::vector<double> data = harvest(make_model(seed));
  const double scales[] = {data[(seed + 1) % data.size()], -0.5, 0.0, 1e-320};
  for (const double a : scales) {
    for (const std::size_t count : interesting_counts(data.size())) {
      std::vector<double> dst_simd(count), dst_scalar(count);
      core::simd::scale(dst_simd.data(), data.data(), count, a);
      scale_scalar(dst_scalar.data(), data.data(), count, a);
      expect_bitwise_equal(dst_simd, dst_scalar, "scale", count, a);

      // The documented dst == src aliasing case (in-place rescale).
      std::vector<double> in_place_simd(data.begin(), data.begin() + count);
      std::vector<double> in_place_scalar = in_place_simd;
      core::simd::scale(in_place_simd.data(), in_place_simd.data(), count, a);
      scale_scalar(in_place_scalar.data(), in_place_scalar.data(), count, a);
      expect_bitwise_equal(in_place_simd, in_place_scalar, "scale[aliased]", count, a);
    }
  }
}

TEST_P(SimdKernels, FillAffineMatchesTheScalarSpellingBitwise) {
  const std::uint32_t seed = GetParam();
  const std::vector<double> data = harvest(make_model(seed));
  // The Poisson table use: first is a Fox-Glynn left truncation point,
  // scale a log(lambda)-like value, offset a negative log-normalizer.
  const std::size_t firsts[] = {0, 1, seed % 97, 12345};
  const double scale = data[(seed + 2) % data.size()];
  const double offset = -data[(seed + 7) % data.size()];
  for (const std::size_t first : firsts) {
    for (const std::size_t count : interesting_counts(64)) {
      std::vector<double> dst_simd(count, -1.0), dst_scalar(count, -2.0);
      core::simd::fill_affine(dst_simd.data(), count, first, scale, offset);
      fill_affine_scalar(dst_scalar.data(), count, first, scale, offset);
      expect_bitwise_equal(dst_simd, dst_scalar, "fill_affine", count, scale);
    }
  }
}

TEST_P(SimdKernels, DoubleVecElementwiseOpsMatchScalarArithmeticPerLane) {
  const std::uint32_t seed = GetParam();
  const std::vector<double> data = harvest(make_model(seed));
  constexpr std::size_t lanes = core::simd::DoubleVec::kLanes;
  ASSERT_GE(data.size(), 2 * lanes);
  const double* a = data.data() + (seed % (data.size() - 2 * lanes));
  const double* b = a + lanes;

  const auto va = core::simd::DoubleVec::load(a);
  const auto vb = core::simd::DoubleVec::load(b);
  double sum[lanes], diff[lanes], prod[lanes], quot[lanes];
  (va + vb).store(sum);
  (va - vb).store(diff);
  (va * vb).store(prod);
  (va / vb).store(quot);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const double s = a[lane] + b[lane];
    const double d = a[lane] - b[lane];
    const double p = a[lane] * b[lane];
    const double q = a[lane] / b[lane];
    EXPECT_EQ(0, std::memcmp(&sum[lane], &s, sizeof(double))) << "lane " << lane;
    EXPECT_EQ(0, std::memcmp(&diff[lane], &d, sizeof(double))) << "lane " << lane;
    EXPECT_EQ(0, std::memcmp(&prod[lane], &p, sizeof(double))) << "lane " << lane;
    // 0/0 is NaN on both paths, but NaN payloads are not part of the
    // contract; every non-NaN quotient (including infinities) must match.
    if (!std::isnan(q)) {
      EXPECT_EQ(0, std::memcmp(&quot[lane], &q, sizeof(double))) << "lane " << lane;
    }
  }
}

// 60 random impulse-reward MRMs — the header's "over random inputs" promise,
// with every count/scale combination above per model.
INSTANTIATE_TEST_SUITE_P(RandomModels, SimdKernels, ::testing::Range(1u, 61u));

TEST(SimdKernelsEdgeCases, BroadcastReplicatesTheExactBitPattern) {
  constexpr std::size_t lanes = core::simd::DoubleVec::kLanes;
  for (const double x : {0.0, -0.0, 1.5, -1e308, std::numeric_limits<double>::denorm_min()}) {
    double out[lanes];
    core::simd::DoubleVec::broadcast(x).store(out);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      EXPECT_EQ(0, std::memcmp(&out[lane], &x, sizeof(double))) << "lane " << lane;
    }
  }
}

TEST(SimdKernelsEdgeCases, ZeroCountTouchesNothing) {
  double sentinel = 42.0;
  core::simd::axpy(&sentinel, &sentinel, 0, 3.0);
  core::simd::scale(&sentinel, &sentinel, 0, 3.0);
  core::simd::fill_affine(&sentinel, 0, 7, 3.0, 1.0);
  EXPECT_EQ(sentinel, 42.0);
}

}  // namespace
}  // namespace csrlmrm

// Tests for csrlmrm-lint: lexer behavior, rule-by-rule fixture corpus,
// suppression comments, JSON round-trips, and CLI exit codes.
//
// Fixture protocol: every line in tests/lint_fixtures/*_bad.* expected to
// fire carries an `EXPECT-LINT` marker comment; the tests assert the
// diagnosed line set equals the marked line set, that every diagnostic names
// the fixture's rule, and that each fixture's lint:allow instance was
// counted as suppressed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "context.hpp"
#include "driver.hpp"
#include "lexer.hpp"
#include "obs/json.hpp"

namespace csrlmrm::lint {
namespace {

std::string fixture_path(const std::string& relative) {
  return std::string(CSRLMRM_LINT_FIXTURES_DIR) + "/" + relative;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "unreadable fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// 1-based numbers of lines carrying an EXPECT-LINT marker.
std::set<std::size_t> marked_lines(const std::string& source) {
  std::set<std::size_t> lines;
  std::istringstream in(source);
  std::string line;
  for (std::size_t number = 1; std::getline(in, line); ++number) {
    if (line.find("EXPECT-LINT") != std::string::npos) lines.insert(number);
  }
  return lines;
}

/// Lints one fixture and checks the marker protocol for `rule`.
void check_fixture(const std::string& relative, const std::string& rule,
                   std::size_t min_suppressed) {
  SCOPED_TRACE(relative);
  const std::string path = fixture_path(relative);
  const LintReport report = lint_paths({path});
  ASSERT_TRUE(report.errors.empty());
  EXPECT_EQ(report.files_scanned, 1u);

  const std::set<std::size_t> expected = marked_lines(read_file(path));
  ASSERT_FALSE(expected.empty()) << "fixture has no EXPECT-LINT markers";

  std::set<std::size_t> actual;
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_EQ(d.rule, rule) << "unexpected rule at " << d.file << ":" << d.line;
    EXPECT_EQ(d.file, path);
    actual.insert(d.line);
  }
  EXPECT_EQ(actual, expected);
  EXPECT_GE(report.suppressed, min_suppressed)
      << "fixture must prove the suppression comment works";
}

// ---------------------------------------------------------------------------
// Fixture corpus: one firing + one suppression proof per rule.

TEST(LintFixtures, FloatEquality) {
  check_fixture("float_equality_bad.cpp", "float-equality", 3);
}

TEST(LintFixtures, UnorderedIteration) {
  check_fixture("src/checker/unordered_iteration_bad.cpp", "unordered-iteration", 2);
}

TEST(LintFixtures, UnsafeLibm) { check_fixture("unsafe_libm_bad.cpp", "unsafe-libm", 1); }

TEST(LintFixtures, FloatNarrowing) {
  check_fixture("float_narrowing_bad.cpp", "float-narrowing", 1);
}

TEST(LintFixtures, NakedNew) { check_fixture("naked_new_bad.cpp", "naked-new", 1); }

TEST(LintFixtures, SolverStats) {
  check_fixture("src/linalg/solver_stats_bad.cpp", "solver-stats", 1);
}

TEST(LintFixtures, Endl) { check_fixture("endl_bad.cpp", "endl", 1); }

TEST(LintFixtures, BannedIdentifier) {
  check_fixture("banned_identifier_bad.cpp", "banned-identifier", 1);
}

TEST(LintFixtures, ReservedIdentifier) {
  check_fixture("reserved_identifier_bad.cpp", "reserved-identifier", 1);
}

TEST(LintFixtures, SimdHygiene) {
  check_fixture("simd_hygiene_bad.cpp", "simd-hygiene", 1);
}

TEST(LintFixtures, DanglingCacheReference) {
  check_fixture("src/core/dangling_cache_bad.cpp", "dangling-cache-reference", 1);
}

TEST(LintFixtures, LockHygiene) {
  check_fixture("src/daemon/lock_hygiene_bad.cpp", "lock-hygiene", 1);
}

TEST(LintFixtures, SyscallHygiene) {
  check_fixture("src/daemon/syscall_hygiene_bad.cpp", "syscall-hygiene", 1);
}

TEST(LintRules, SimdHygieneExemptsTheDoubleVecHeader) {
  // The one sanctioned home of raw vector machinery: the rule must stay
  // silent on src/core/simd.hpp and fire on the same spelling anywhere else.
  constexpr const char* snippet =
      "#pragma once\n"
      "typedef double Native [[gnu::vector_size(32)]];\n";
  LintOptions only_simd;
  only_simd.rule_filter = {"simd-hygiene"};
  EXPECT_TRUE(lint_source("src/core/simd.hpp", snippet, only_simd).diagnostics.empty());
  ASSERT_EQ(lint_source("src/numeric/omega.cpp", snippet, only_simd).diagnostics.size(), 1u);
  ASSERT_EQ(lint_source("bench/bench_kernels.cpp", snippet, only_simd).diagnostics.size(), 1u);
}

TEST(LintFixtures, PragmaOnceFires) {
  const LintReport report = lint_paths({fixture_path("missing_pragma_bad.hpp")});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, "pragma-once");
  EXPECT_EQ(report.diagnostics[0].line, 1u);
}

TEST(LintFixtures, PragmaOnceFileWideSuppression) {
  const LintReport report = lint_paths({fixture_path("pragma_suppressed.hpp")});
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.suppressed, 1u);
}

TEST(LintFixtures, CleanCorpusIsClean) {
  const LintReport report =
      lint_paths({fixture_path("clean.cpp"), fixture_path("clean.hpp")});
  EXPECT_EQ(report.files_scanned, 2u);
  EXPECT_TRUE(report.diagnostics.empty())
      << format_text(report);
  EXPECT_EQ(report.suppressed, 0u);
}

// ---------------------------------------------------------------------------
// Lexer.

TEST(LintLexer, FloatLiteralClassification) {
  const LexedFile f = lex("x.cpp", "1.0 1e-3 3.f 42 0x2a 0x1p3 1'000 2.5e+7");
  ASSERT_EQ(f.tokens.size(), 8u);
  const bool expected_float[] = {true, true, true, false, false, true, false, true};
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    EXPECT_EQ(f.tokens[i].kind, TokenKind::kNumber) << i;
    EXPECT_EQ(f.tokens[i].is_float_literal, expected_float[i]) << f.text(f.tokens[i]);
  }
}

TEST(LintLexer, CommentsAreNotTokens) {
  const LexedFile f = lex("x.cpp", "int a; // rand() == 0.0\n/* new delete */ int b;");
  for (const Token& t : f.tokens) {
    EXPECT_NE(f.text(t), "rand");
    EXPECT_NE(f.text(t), "new");
  }
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_FALSE(f.comments[0].owns_line);  // trails `int a;`
  EXPECT_TRUE(f.comments[1].block);
}

TEST(LintLexer, StringsSwallowBannedContent) {
  const LexedFile f = lex("x.cpp", "const char* s = \"rand() std::endl\";\n"
                                   "const char* r = R\"(x == 0.0\nmore)\";\n"
                                   "int after = 1;");
  std::size_t strings = 0;
  for (const Token& t : f.tokens) {
    if (t.kind == TokenKind::kString) ++strings;
    EXPECT_NE(f.text(t), "rand");
    EXPECT_NE(f.text(t), "endl");
  }
  EXPECT_EQ(strings, 2u);
  // The raw string body spans source lines 2-3; `after` must land on line 4.
  const auto after = std::find_if(f.tokens.begin(), f.tokens.end(),
                                  [&](const Token& t) { return f.text(t) == "after"; });
  ASSERT_NE(after, f.tokens.end());
  EXPECT_EQ(after->line, 4u);
}

TEST(LintLexer, PreprocessorLinesAreSingleTokens) {
  const LexedFile f = lex("x.cpp", "#define TWICE(x) \\\n  ((x) + (x))\nint y;");
  ASSERT_GE(f.tokens.size(), 4u);
  EXPECT_EQ(f.tokens[0].kind, TokenKind::kPreprocessor);
  EXPECT_EQ(f.tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(f.text(f.tokens[1]), "int");
  EXPECT_EQ(f.tokens[1].line, 3u);
}

// ---------------------------------------------------------------------------
// Rule scoping and filtering via in-memory sources.

constexpr const char* kUnorderedSnippet =
    "#include <unordered_map>\n"
    "double fold(const std::unordered_map<int, double>& m) {\n"
    "  double acc = 0.0;\n"
    "  for (const auto& [k, v] : m) acc += v;\n"
    "  return acc;\n"
    "}\n";

TEST(LintRules, UnorderedIterationFiresOnlyInHotSubsystems) {
  EXPECT_EQ(lint_source("src/checker/a.cpp", kUnorderedSnippet).diagnostics.size(), 1u);
  EXPECT_EQ(lint_source("src/numeric/a.cpp", kUnorderedSnippet).diagnostics.size(), 1u);
  EXPECT_TRUE(lint_source("tests/a.cpp", kUnorderedSnippet).diagnostics.empty());
  EXPECT_TRUE(lint_source("src/models/a.cpp", kUnorderedSnippet).diagnostics.empty());
}

TEST(LintRules, SolverStatsAppliesToSrcOnly) {
  constexpr const char* snippet =
      "int jacobi_solve(int n) {\n"
      "  int acc = 0;\n"
      "  for (int i = 0; i < n; ++i) acc += i;\n"
      "  return acc;\n"
      "}\n";
  const LintReport in_src = lint_source("src/linalg/a.cpp", snippet);
  ASSERT_EQ(in_src.diagnostics.size(), 1u);
  EXPECT_EQ(in_src.diagnostics[0].rule, "solver-stats");
  EXPECT_TRUE(lint_source("bench/a.cpp", snippet).diagnostics.empty());
}

TEST(LintRules, ApprovedHelperPrefixesAreExempt) {
  EXPECT_TRUE(
      lint_source("src/core/a.hpp",
                  "#pragma once\n"
                  "inline bool approx_same(double a, double b) { return a == 0.0 && b == 0.0; }\n")
          .diagnostics.empty());
  EXPECT_EQ(
      lint_source("src/core/a.hpp",
                  "#pragma once\n"
                  "inline bool roughly_same(double a, double b) { return a == 0.0 && b == 0.0; }\n")
          .diagnostics.size(),
      2u);
}

TEST(LintRules, RuleFilterRestrictsExecution) {
  constexpr const char* snippet =
      "#include <iostream>\n"
      "bool f(double x) { std::cout << std::endl; return x == 0.0; }\n";
  LintOptions only_endl;
  only_endl.rule_filter = {"endl"};
  const LintReport report = lint_source("tests/a.cpp", snippet, only_endl);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, "endl");
}

TEST(LintRules, CatalogueIsStable) {
  const auto rules = make_default_rules();
  ASSERT_EQ(rules.size(), 14u);
  const std::set<std::string> names = [&] {
    std::set<std::string> out;
    for (const auto& r : rules) out.insert(std::string(r->name()));
    return out;
  }();
  const std::set<std::string> expected = {
      "float-equality", "unordered-iteration", "unsafe-libm",       "float-narrowing",
      "naked-new",      "solver-stats",        "endl",              "banned-identifier",
      "pragma-once",    "reserved-identifier", "simd-hygiene",
      "dangling-cache-reference", "lock-hygiene", "syscall-hygiene"};
  EXPECT_EQ(names, expected);
  for (const auto& r : rules) EXPECT_FALSE(r->description().empty());
}

// ---------------------------------------------------------------------------
// Suppressions.

TEST(LintSuppression, ListedRuleOnlySuppressesItself) {
  // The allowance names `endl`, so float-equality on the same line survives.
  const LintReport report = lint_source(
      "tests/a.cpp",
      "#include <iostream>\n"
      "bool f(double x) { std::cout << std::endl; return x == 0.0; }  // lint:allow(endl)\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, "float-equality");
  EXPECT_EQ(report.suppressed, 1u);
}

TEST(LintSuppression, CommaListAndAllKeyword) {
  EXPECT_TRUE(lint_source("tests/a.cpp",
                          "#include <iostream>\n"
                          "bool f(double x) { std::cout << std::endl; return x == 0.0; }"
                          "  // lint:allow(endl, float-equality)\n")
                  .diagnostics.empty());
  EXPECT_TRUE(lint_source("tests/a.cpp",
                          "#include <iostream>\n"
                          "bool f(double x) { std::cout << std::endl; return x == 0.0; }"
                          "  // lint:allow(all)\n")
                  .diagnostics.empty());
}

TEST(LintSuppression, StandaloneCommentTargetsNextCodeLine) {
  const LintReport report = lint_source("tests/a.cpp",
                                        "// lint:allow(float-equality)\n"
                                        "// spanning a second justification line\n"
                                        "bool f(double x) { return x == 0.0; }\n");
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.suppressed, 1u);
}

TEST(LintSuppression, FileWideAllowance) {
  const LintReport report = lint_source("tests/a.cpp",
                                        "// lint:allow-file(float-equality)\n"
                                        "bool f(double x) { return x == 0.0; }\n"
                                        "bool g(double x) { return x == 1.0; }\n");
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.suppressed, 2u);
}

TEST(LintSuppression, SuppressionDoesNotLeakToOtherLines) {
  const LintReport report = lint_source("tests/a.cpp",
                                        "bool f(double x) { return x == 0.0; }  // lint:allow(float-equality)\n"
                                        "bool g(double x) { return x == 1.0; }\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].line, 2u);
}

// ---------------------------------------------------------------------------
// JSON report.

TEST(LintJson, RoundTripPreservesDiagnostics) {
  const LintReport report = lint_source(
      "tests/a.cpp", "#include <iostream>\nvoid f() { std::cout << std::endl; }\n");
  ASSERT_EQ(report.diagnostics.size(), 1u);

  const obs::JsonValue parsed = obs::parse_json(obs::write_json(report_to_json(report)));
  EXPECT_EQ(parsed.at("tool").as_string(), "csrlmrm-lint");
  EXPECT_EQ(parsed.at("files_scanned").as_number(), 1.0);
  EXPECT_FALSE(parsed.at("clean").as_bool());
  const auto& diags = parsed.at("diagnostics").items();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].at("rule").as_string(), "endl");
  EXPECT_EQ(diags[0].at("file").as_string(), "tests/a.cpp");
  EXPECT_EQ(diags[0].at("line").as_number(), 2.0);
  EXPECT_FALSE(diags[0].at("message").as_string().empty());
}

TEST(LintJson, CleanReportShape) {
  const obs::JsonValue parsed = obs::parse_json(
      obs::write_json(report_to_json(lint_source("tests/a.cpp", "int x = 1;\n"))));
  EXPECT_TRUE(parsed.at("clean").as_bool());
  EXPECT_TRUE(parsed.at("diagnostics").items().empty());
  EXPECT_TRUE(parsed.at("errors").items().empty());
}

TEST(LintDriver, MissingPathIsReported) {
  const LintReport report = lint_paths({fixture_path("does_not_exist.cpp")});
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_FALSE(report.clean());
}

// ---------------------------------------------------------------------------
// CLI exit codes (0 clean / 1 diagnostics / 2 usage), mirroring the mrmcheck
// CLI tests' spawn idiom.

#if defined(CSRLMRM_LINT_BINARY) && !defined(_WIN32)

int run_lint_cli(const std::string& arguments) {
  const std::string command = std::string("'") + CSRLMRM_LINT_BINARY + "' " + arguments +
                              " >/dev/null 2>/dev/null";
  const int status = std::system(command.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

TEST(LintCli, CleanFileExitsZero) {
  EXPECT_EQ(run_lint_cli("'" + fixture_path("clean.cpp") + "'"), 0);
}

TEST(LintCli, DiagnosticsExitOne) {
  EXPECT_EQ(run_lint_cli("'" + fixture_path("endl_bad.cpp") + "'"), 1);
}

TEST(LintCli, UsageErrorsExitTwo) {
  EXPECT_EQ(run_lint_cli(""), 2);                          // no paths
  EXPECT_EQ(run_lint_cli("--rule=no-such-rule '" + fixture_path("clean.cpp") + "'"), 2);
  EXPECT_EQ(run_lint_cli("--no-such-flag '" + fixture_path("clean.cpp") + "'"), 2);
}

TEST(LintCli, JsonFileOutputParses) {
  const auto json_path =
      std::filesystem::temp_directory_path() / "csrlmrm_lint_cli_report.json";
  std::filesystem::remove(json_path);
  EXPECT_EQ(run_lint_cli("--json='" + json_path.string() + "' '" +
                         fixture_path("endl_bad.cpp") + "'"),
            1);
  const obs::JsonValue parsed = obs::parse_json(read_file(json_path.string()));
  EXPECT_FALSE(parsed.at("clean").as_bool());
  EXPECT_FALSE(parsed.at("diagnostics").items().empty());
  std::filesystem::remove(json_path);
}

TEST(LintCli, SarifFileOutputParses) {
  const auto sarif_path =
      std::filesystem::temp_directory_path() / "csrlmrm_lint_cli_report.sarif";
  std::filesystem::remove(sarif_path);
  EXPECT_EQ(run_lint_cli("--format=sarif --output='" + sarif_path.string() + "' '" +
                         fixture_path("endl_bad.cpp") + "'"),
            1);
  const obs::JsonValue parsed = obs::parse_json(read_file(sarif_path.string()));
  EXPECT_EQ(parsed.at("version").as_string(), "2.1.0");
  const auto& runs = parsed.at("runs").items();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].at("tool").at("driver").at("name").as_string(), "csrlmrm-lint");
  const auto& results = runs[0].at("results").items();
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].at("ruleId").as_string(), "endl");
  std::filesystem::remove(sarif_path);
}

#if defined(CSRLMRM_SOURCE_DIR)
// The plan subsystem must stay inside the whole-tree scan's scope: lint_tree
// already walks src/ recursively, but this pins the directory explicitly so
// a future scan-list regression (e.g. an exclude pattern swallowing
// src/plan) fails a unit test, not just a code review.
TEST(LintCli, PlanSubsystemIsCleanAndInScope) {
  const std::string plan_dir = std::string(CSRLMRM_SOURCE_DIR) + "/src/plan";
  ASSERT_TRUE(std::filesystem::is_directory(plan_dir)) << plan_dir;
  EXPECT_EQ(run_lint_cli("'" + plan_dir + "'"), 0);
}

// Same pin for the daemon subsystem: src/daemon carries raw socket I/O and
// hand-rolled framing — exactly the code the linter's rules (no naked new,
// no float ==, no reserved identifiers) are meant to keep honest.
TEST(LintCli, DaemonSubsystemIsCleanAndInScope) {
  const std::string daemon_dir = std::string(CSRLMRM_SOURCE_DIR) + "/src/daemon";
  ASSERT_TRUE(std::filesystem::is_directory(daemon_dir)) << daemon_dir;
  EXPECT_EQ(run_lint_cli("'" + daemon_dir + "'"), 0);
}

// Same pin for the model generators: src/models gained the streamed
// generator families (generator.cpp and the grid/crowd/virus sources) —
// BFS exploration with bitmask state encodings and raw strtol/strtod spec
// parsing, exactly the integer/double mixing the linter should keep honest.
// The existence checks make the pin fail loudly if the files are ever moved
// out of the scanned tree instead of silently shrinking the scan.
TEST(LintCli, ModelGeneratorsAreCleanAndInScope) {
  const std::string models_dir = std::string(CSRLMRM_SOURCE_DIR) + "/src/models";
  ASSERT_TRUE(std::filesystem::is_directory(models_dir)) << models_dir;
  for (const char* file : {"generator.hpp", "generator.cpp", "grid_network.cpp",
                           "crowd_epidemic.cpp", "virus_spread.cpp"}) {
    ASSERT_TRUE(std::filesystem::exists(models_dir + "/" + file)) << file;
  }
  EXPECT_EQ(run_lint_cli("'" + models_dir + "'"), 0);
}
#endif  // CSRLMRM_SOURCE_DIR

#endif  // CSRLMRM_LINT_BINARY && !_WIN32

}  // namespace
}  // namespace csrlmrm::lint

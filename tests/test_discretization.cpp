// The discretization engine (Algorithm 4.6) against closed forms and the
// reward-scaling helper.
#include "numeric/discretization.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/transform.hpp"
#include "models/wavelan.hpp"

namespace csrlmrm::numeric {
namespace {

std::vector<bool> mask(std::size_t n, std::initializer_list<int> members) {
  std::vector<bool> m(n, false);
  for (int i : members) m[static_cast<std::size_t>(i)] = true;
  return m;
}

DiscretizationOptions step(double d) {
  DiscretizationOptions options;
  options.step = d;
  return options;
}

/// Two-state death chain 0 -> 1 (rate mu) with rho(0) = c and an optional
/// impulse; target state 1 is already absorbing, rewards of psi-states are
/// zeroed as the transformed model would have them.
core::Mrm death_chain(double mu, double c, double iota = 0.0) {
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, mu);
  core::ImpulseRewardsBuilder impulses(2);
  if (iota > 0.0) impulses.add(0, 1, iota);
  return core::Mrm(core::Ctmc(rates.build(), core::Labeling(2)), {c, 0.0}, impulses.build());
}

TEST(Discretization, FindIntegerScaleIdentifiesFactors) {
  EXPECT_EQ(find_integer_scale({1.0, 2.0, 5.0}, 100), 1u);
  EXPECT_EQ(find_integer_scale({0.5, 1.5}, 100), 2u);
  EXPECT_EQ(find_integer_scale({7.4, 10.0}, 100), 5u);
  EXPECT_EQ(find_integer_scale({1.0 / 3.0}, 100), 3u);
  EXPECT_THROW(find_integer_scale({0.123456789}, 10), std::domain_error);
}

TEST(Discretization, ConvergesToExponentialClosedForm) {
  // P = 1 - exp(-mu min(t, r/c)); time-limited case.
  const double mu = 0.5;
  const double c = 2.0;
  const core::Mrm model = death_chain(mu, c);
  const double t = 4.0;
  const double r = 100.0;  // not binding
  double previous_error = 1.0;
  for (double d : {0.25, 0.125, 0.0625}) {
    const auto result =
        until_probability_discretization(model, mask(2, {1}), 0, t, r, step(d));
    const double error = std::abs(result.probability - (1.0 - std::exp(-mu * t)));
    EXPECT_LT(error, previous_error) << "d=" << d;  // converges as d shrinks
    previous_error = error;
  }
  EXPECT_LT(previous_error, 5e-3);
}

TEST(Discretization, RewardBoundBitesAtRoverC) {
  const double mu = 0.8;
  const double c = 4.0;
  const core::Mrm model = death_chain(mu, c);
  const double t = 10.0;
  const double r = 8.0;  // binding: effective horizon r/c = 2
  const auto result =
      until_probability_discretization(model, mask(2, {1}), 0, t, r, step(1.0 / 64.0));
  EXPECT_NEAR(result.probability, 1.0 - std::exp(-mu * (r / c)), 2e-2);
}

TEST(Discretization, ImpulseShiftsTheRewardBudget) {
  const double mu = 1.0;
  const double c = 1.0;
  const double iota = 2.0;
  const core::Mrm model = death_chain(mu, c, iota);
  const double t = 10.0;
  const double r = 3.0;  // need c*T + iota <= r -> T <= 1
  const auto result =
      until_probability_discretization(model, mask(2, {1}), 0, t, r, step(1.0 / 64.0));
  EXPECT_NEAR(result.probability, 1.0 - std::exp(-mu * 1.0), 2e-2);
}

TEST(Discretization, ImpulseAboveBudgetGivesZero) {
  const core::Mrm model = death_chain(1.0, 1.0, 5.0);
  const auto result =
      until_probability_discretization(model, mask(2, {1}), 0, 4.0, 3.0, step(0.125));
  EXPECT_DOUBLE_EQ(result.probability, 0.0);
}

TEST(Discretization, ScalesRationalRewards) {
  // rho = 0.5 needs scale 2; result must match the integer-reward run.
  const core::Mrm half = death_chain(0.5, 0.5);
  const auto result =
      until_probability_discretization(half, mask(2, {1}), 0, 4.0, 100.0, step(0.125));
  EXPECT_EQ(result.reward_scale, 2u);
  EXPECT_NEAR(result.probability, 1.0 - std::exp(-0.5 * 4.0), 2e-2);
}

TEST(Discretization, PsiStartIsCertain) {
  const core::Mrm model = death_chain(1.0, 2.0);
  const auto result =
      until_probability_discretization(model, mask(2, {1}), 1, 3.0, 10.0, step(0.25));
  EXPECT_NEAR(result.probability, 1.0, 1e-12);
}

TEST(Discretization, ZeroTimeIsIndicator) {
  const core::Mrm model = death_chain(1.0, 2.0);
  EXPECT_DOUBLE_EQ(
      until_probability_discretization(model, mask(2, {1}), 1, 0.0, 1.0, step(0.25))
          .probability,
      1.0);
  EXPECT_DOUBLE_EQ(
      until_probability_discretization(model, mask(2, {1}), 0, 0.0, 1.0, step(0.25))
          .probability,
      0.0);
}

TEST(Discretization, ReportsGridDimensions) {
  const core::Mrm model = death_chain(1.0, 2.0);
  const auto result =
      until_probability_discretization(model, mask(2, {1}), 0, 2.0, 4.0, step(0.25));
  EXPECT_EQ(result.time_steps, 8u);
  EXPECT_EQ(result.reward_levels, 17u);  // levels 0..16
  EXPECT_EQ(result.reward_scale, 1u);
}

TEST(Discretization, RejectsTooCoarseStep) {
  const core::Mrm model = death_chain(10.0, 1.0);  // max exit 10 -> need d < 0.1
  EXPECT_THROW(
      until_probability_discretization(model, mask(2, {1}), 0, 1.0, 1.0, step(0.25)),
      std::invalid_argument);
}

TEST(Discretization, RejectsNonMultipleTime) {
  const core::Mrm model = death_chain(1.0, 1.0);
  EXPECT_THROW(
      until_probability_discretization(model, mask(2, {1}), 0, 1.1, 1.0, step(0.25)),
      std::invalid_argument);
}

TEST(Discretization, RejectsNonGridImpulse) {
  // iota = 0.1 is not a multiple of d = 0.25.
  const core::Mrm model = death_chain(1.0, 1.0, 0.1);
  EXPECT_THROW(
      until_probability_discretization(model, mask(2, {1}), 0, 1.0, 1.0, step(0.25)),
      std::invalid_argument);
}

TEST(Discretization, WavelanTransformedModelRuns) {
  // End-to-end shape: run on M[!idle v busy] and compare roughly with the
  // Example 3.6 value (d is coarse, so allow a percent-level gap).
  const core::Mrm model = models::make_wavelan();
  const auto idle = model.labels().states_with("idle");
  const auto busy = model.labels().states_with("busy");
  std::vector<bool> absorb(5, false);
  for (std::size_t s = 0; s < 5; ++s) absorb[s] = !idle[s] || busy[s];
  const core::Mrm transformed = core::make_absorbing(model, absorb);
  // Impulses (multiples of 5e-5) force a fine reward grid; keep r modest.
  DiscretizationOptions options;
  options.step = 1.0 / 64.0;
  options.max_reward_scale = 1;
  // State rewards are integers (0, 80, 1319, ...) and impulses are multiples
  // of 1/64? They are not -> expect the integrality guard to fire.
  EXPECT_THROW(
      until_probability_discretization(transformed, busy, models::kWavelanIdle, 2.0, 2000.0,
                                       options),
      std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::numeric

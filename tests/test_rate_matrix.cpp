// RateMatrix: exit rates, embedded DTMC, generator — checked against the
// WaveLAN example of the thesis (Example 2.4 / 4.2).
#include "core/rate_matrix.hpp"

#include <gtest/gtest.h>

namespace csrlmrm::core {
namespace {

RateMatrix wavelan_rates() {
  // Example 4.2 rates (states 0..4 = off, sleep, idle, receive, transmit).
  RateMatrixBuilder builder(5);
  builder.add(0, 1, 0.1);
  builder.add(1, 0, 0.05);
  builder.add(1, 2, 5.0);
  builder.add(2, 1, 12.0);
  builder.add(2, 3, 1.5);
  builder.add(2, 4, 0.75);
  builder.add(3, 2, 10.0);
  builder.add(4, 2, 15.0);
  return builder.build();
}

TEST(RateMatrix, ExitRatesMatchExample24) {
  const RateMatrix rates = wavelan_rates();
  EXPECT_DOUBLE_EQ(rates.exit_rate(0), 0.1);
  EXPECT_DOUBLE_EQ(rates.exit_rate(1), 5.05);
  EXPECT_DOUBLE_EQ(rates.exit_rate(2), 14.25);
  EXPECT_DOUBLE_EQ(rates.exit_rate(3), 10.0);
  EXPECT_DOUBLE_EQ(rates.exit_rate(4), 15.0);
  EXPECT_DOUBLE_EQ(rates.max_exit_rate(), 15.0);
}

TEST(RateMatrix, JumpProbabilitiesAreRaceOdds) {
  const RateMatrix rates = wavelan_rates();
  EXPECT_DOUBLE_EQ(rates.jump_probability(2, 3), 1.5 / 14.25);
  EXPECT_DOUBLE_EQ(rates.jump_probability(2, 4), 0.75 / 14.25);
  EXPECT_DOUBLE_EQ(rates.jump_probability(2, 1), 12.0 / 14.25);
  EXPECT_DOUBLE_EQ(rates.jump_probability(0, 3), 0.0);  // no transition
}

TEST(RateMatrix, AbsorbingStateDetected) {
  RateMatrixBuilder builder(2);
  builder.add(0, 1, 1.0);
  const RateMatrix rates = builder.build();
  EXPECT_FALSE(rates.is_absorbing(0));
  EXPECT_TRUE(rates.is_absorbing(1));
  EXPECT_DOUBLE_EQ(rates.jump_probability(1, 0), 0.0);
}

TEST(RateMatrix, GeneratorRowsSumToZero) {
  const auto generator = wavelan_rates().generator();
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(generator.row_sum(s), 0.0, 1e-12) << "state " << s;
  }
  EXPECT_DOUBLE_EQ(generator.at(2, 2), -14.25);
}

TEST(RateMatrix, EmbeddedDtmcRowsAreStochastic) {
  const auto embedded = wavelan_rates().embedded_dtmc();
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(embedded.row_sum(s), 1.0, 1e-12) << "state " << s;
  }
}

TEST(RateMatrix, EmbeddedDtmcOfAbsorbingStateIsEmptyRow) {
  RateMatrixBuilder builder(2);
  builder.add(0, 1, 2.0);
  const auto embedded = builder.build().embedded_dtmc();
  EXPECT_DOUBLE_EQ(embedded.row_sum(1), 0.0);
  EXPECT_DOUBLE_EQ(embedded.at(0, 1), 1.0);
}

TEST(RateMatrix, SelfLoopsAreAllowedAndCounted) {
  // Definition 2.1 allows self-transitions.
  RateMatrixBuilder builder(1);
  builder.add(0, 0, 3.0);
  const RateMatrix rates = builder.build();
  EXPECT_DOUBLE_EQ(rates.exit_rate(0), 3.0);
  EXPECT_DOUBLE_EQ(rates.jump_probability(0, 0), 1.0);
}

TEST(RateMatrixBuilder, RejectsNegativeRates) {
  RateMatrixBuilder builder(2);
  EXPECT_THROW(builder.add(0, 1, -0.5), std::invalid_argument);
}

TEST(RateMatrixBuilder, AccumulatesParallelTransitions) {
  RateMatrixBuilder builder(2);
  builder.add(0, 1, 1.0);
  builder.add(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(builder.build().rate(0, 1), 3.0);
}

TEST(RateMatrix, RejectsNonSquareMatrix) {
  linalg::CsrBuilder builder(2, 3);
  EXPECT_THROW(RateMatrix(builder.build()), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::core

// ModelChecker end-to-end: Algorithm 4.1 over parsed CSRL formulas.
#include "checker/sat.hpp"

#include <gtest/gtest.h>

#include "logic/parser.hpp"
#include "models/wavelan.hpp"

namespace csrlmrm::checker {
namespace {

class CheckerOnWavelan : public ::testing::Test {
 protected:
  CheckerOnWavelan() : model_(models::make_wavelan()), checker_(model_, options()) {}

  static CheckerOptions options() {
    CheckerOptions o;
    o.uniformization.truncation_probability = 1e-18;
    return o;
  }

  std::vector<bool> sat(const std::string& formula) {
    return checker_.satisfaction_set(logic::parse_formula(formula));
  }

  core::Mrm model_;
  ModelChecker checker_;
};

TEST_F(CheckerOnWavelan, ConstantsAndAtoms) {
  EXPECT_EQ(sat("TT"), std::vector<bool>(5, true));
  EXPECT_EQ(sat("FF"), std::vector<bool>(5, false));
  EXPECT_EQ(sat("busy"), (std::vector<bool>{false, false, false, true, true}));
  EXPECT_EQ(sat("idle"), (std::vector<bool>{false, false, true, false, false}));
  EXPECT_EQ(sat("nonexistent"), std::vector<bool>(5, false));
}

TEST_F(CheckerOnWavelan, BooleanConnectives) {
  EXPECT_EQ(sat("!busy"), (std::vector<bool>{true, true, true, false, false}));
  EXPECT_EQ(sat("busy || idle"), (std::vector<bool>{false, false, true, true, true}));
  EXPECT_EQ(sat("busy && transmit"), (std::vector<bool>{false, false, false, false, true}));
  EXPECT_EQ(sat("!(busy || idle) && !off"), (std::vector<bool>{false, true, false, false, false}));
}

TEST_F(CheckerOnWavelan, SteadyStateOperator) {
  // The WaveLAN chain is irreducible: either every state satisfies an
  // S-formula or none does.
  const auto yes = sat("S(>0.0001) busy");
  const auto no = sat("S(>0.9) busy");
  EXPECT_EQ(yes, std::vector<bool>(5, true));
  EXPECT_EQ(no, std::vector<bool>(5, false));
}

TEST_F(CheckerOnWavelan, NextOperator) {
  // From receive/transmit the only successor is idle.
  const auto s = sat("P(>=1) [X idle]");
  EXPECT_TRUE(s[models::kWavelanReceive]);
  EXPECT_TRUE(s[models::kWavelanTransmit]);
  EXPECT_FALSE(s[models::kWavelanIdle]);
  EXPECT_FALSE(s[models::kWavelanOff]);
}

TEST_F(CheckerOnWavelan, UnboundedUntilOperator) {
  // Irreducible chain: busy is eventually reached from everywhere.
  EXPECT_EQ(sat("P(>0.99)[TT U busy]"), std::vector<bool>(5, true));
  // But not while staying idle from off.
  const auto s = sat("P(>0.01)[idle U busy]");
  EXPECT_FALSE(s[models::kWavelanOff]);
  EXPECT_TRUE(s[models::kWavelanIdle]);
  EXPECT_TRUE(s[models::kWavelanReceive]);  // Psi-state satisfies immediately
}

TEST_F(CheckerOnWavelan, RewardBoundedUntilExample36) {
  // P(3, idle U^[0,2]_[0,2000] busy) = 0.15789: satisfies > 0.1, not > 0.2.
  const auto lo = sat("P(>0.1)[idle U[0,2][0,2000] busy]");
  EXPECT_TRUE(lo[models::kWavelanIdle]);
  const auto hi = sat("P(>0.2)[idle U[0,2][0,2000] busy]");
  EXPECT_FALSE(hi[models::kWavelanIdle]);
}

TEST_F(CheckerOnWavelan, NestedFormulasEvaluate) {
  const auto s = sat("P(>0.5)[X (P(>=1)[X idle])]");
  // From idle, successors receive/transmit both satisfy P(>=1)[X idle]
  // with combined jump probability (1.5+0.75)/14.25 < 0.5 -> idle fails;
  // sleep's successor set {off, idle}: idle does not satisfy the inner
  // formula (jump prob to idle is 12/14.25 < 1)... compute: inner Sat =
  // {receive, transmit}; from idle P = 2.25/14.25 ~ 0.158 < 0.5.
  EXPECT_FALSE(s[models::kWavelanIdle]);
  EXPECT_FALSE(s[models::kWavelanOff]);
}

TEST_F(CheckerOnWavelan, SatisfactionIsMemoizedPerNode) {
  const auto formula = logic::parse_formula("S(>0.0001) busy");
  const auto& first = checker_.satisfaction_set(formula);
  const auto& second = checker_.satisfaction_set(formula);
  EXPECT_EQ(&first, &second);  // same cached vector
}

TEST_F(CheckerOnWavelan, SatisfiesChecksSingleState) {
  const auto formula = logic::parse_formula("busy");
  EXPECT_TRUE(checker_.satisfies(models::kWavelanReceive, formula));
  EXPECT_FALSE(checker_.satisfies(models::kWavelanIdle, formula));
  EXPECT_THROW(checker_.satisfies(17, formula), std::out_of_range);
}

TEST_F(CheckerOnWavelan, PathProbabilitiesRejectsNonPathNode) {
  EXPECT_THROW(checker_.path_probabilities(logic::parse_formula("busy")),
               std::invalid_argument);
  EXPECT_THROW(checker_.steady_probabilities(logic::parse_formula("busy")),
               std::invalid_argument);
}

TEST_F(CheckerOnWavelan, DiscretizationMethodIsSelectable) {
  CheckerOptions o;
  o.until_method = UntilMethod::kDiscretization;
  o.discretization.step = 0.015625;  // 1/64 > 1/14.25? no: 0.0156*14.25 = 0.22 < 1 ok
  ModelChecker discretizing(model_, o);
  // Use a reward bound that is a multiple of the impulse grid: impulses are
  // multiples of 5e-5, not of d -> the engine must refuse.
  EXPECT_THROW(
      discretizing.path_probabilities(logic::parse_formula("P(>0.1)[idle U[0,2][0,2000] busy]")),
      std::invalid_argument);
}

TEST(Checker, HandlesModelWithTrapStates) {
  // Two-state model where the b-state is an absorbing trap.
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  core::Labeling labels(2);
  labels.add(1, "b");
  const core::Mrm model(core::Ctmc(rates.build(), std::move(labels)), {1.0, 0.0});
  ModelChecker checker(model);
  // P(0, TT U^[0,1]_[0,10] b) = 1 - e^{-1} ~ 0.632 (reward bound not binding).
  const auto yes = checker.satisfaction_set(logic::parse_formula("P(>=0.5)[TT U[0,1][0,10] b]"));
  EXPECT_TRUE(yes[0]);
  EXPECT_TRUE(yes[1]);
  const auto no = checker.satisfaction_set(logic::parse_formula("P(>=0.7)[TT U[0,1][0,10] b]"));
  EXPECT_FALSE(no[0]);
  EXPECT_TRUE(no[1]);
}

}  // namespace
}  // namespace csrlmrm::checker

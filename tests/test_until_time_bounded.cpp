// Time-bounded until without reward bound (P1): Theorem 4.1 reduction to
// transient analysis, against closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "checker/until.hpp"
#include "models/wavelan.hpp"

namespace csrlmrm::checker {
namespace {

using logic::Interval;

std::vector<bool> mask(std::size_t n, std::initializer_list<int> members) {
  std::vector<bool> m(n, false);
  for (int i : members) m[static_cast<std::size_t>(i)] = true;
  return m;
}

TEST(TimeBoundedUntil, SingleTransitionMatchesExponentialCdf) {
  core::RateMatrixBuilder rates(2);
  const double mu = 0.8;
  rates.add(0, 1, mu);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)), {0.0, 0.0});
  for (double t : {0.5, 2.0, 10.0}) {
    const auto values = until_probabilities(model, std::vector<bool>(2, true), mask(2, {1}),
                                            logic::up_to(t), Interval{});
    EXPECT_NEAR(values[0].probability, 1.0 - std::exp(-mu * t), 1e-9) << "t=" << t;
    EXPECT_DOUBLE_EQ(values[1].probability, 1.0);
  }
}

TEST(TimeBoundedUntil, PhiViolationMakesTargetUnreachable) {
  // 0 -> 1 -> 2 with Phi = {0}: P(0, Phi U^[0,t] {2}) = 0.
  core::RateMatrixBuilder rates(3);
  rates.add(0, 1, 1.0);
  rates.add(1, 2, 1.0);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(3)),
                        std::vector<double>(3, 0.0));
  const auto values =
      until_probabilities(model, mask(3, {0}), mask(3, {2}), logic::up_to(10.0), Interval{});
  EXPECT_NEAR(values[0].probability, 0.0, 1e-12);
}

TEST(TimeBoundedUntil, TwoStepErlangReachability) {
  // 0 -> 1 -> 2 both at rate mu, all Phi: P = Erlang-2 CDF.
  const double mu = 1.3;
  const double t = 1.7;
  core::RateMatrixBuilder rates(3);
  rates.add(0, 1, mu);
  rates.add(1, 2, mu);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(3)),
                        std::vector<double>(3, 0.0));
  const auto values = until_probabilities(model, std::vector<bool>(3, true), mask(3, {2}),
                                          logic::up_to(t), Interval{});
  const double erlang2 = 1.0 - std::exp(-mu * t) * (1.0 + mu * t);
  EXPECT_NEAR(values[0].probability, erlang2, 1e-9);
}

TEST(TimeBoundedUntil, PsiAbsorptionFreezesSuccess) {
  // Once Psi is hit the formula stays satisfied even if the original chain
  // would leave Psi again: 0 -> 1 -> 0 cycle, target {1}.
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 2.0);
  rates.add(1, 0, 50.0);  // would bounce right back
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)),
                        std::vector<double>(2, 0.0));
  const auto values = until_probabilities(model, std::vector<bool>(2, true), mask(2, {1}),
                                          logic::up_to(3.0), Interval{});
  EXPECT_NEAR(values[0].probability, 1.0 - std::exp(-2.0 * 3.0), 1e-9);
}

TEST(TimeBoundedUntil, ZeroTimeIsIndicatorOfPsi) {
  const core::Mrm model = models::make_wavelan();
  const auto values = until_probabilities(model, std::vector<bool>(5, true),
                                          model.labels().states_with("busy"),
                                          logic::up_to(0.0), Interval{});
  EXPECT_DOUBLE_EQ(values[models::kWavelanReceive].probability, 1.0);
  EXPECT_DOUBLE_EQ(values[models::kWavelanIdle].probability, 0.0);
}

TEST(TimeBoundedUntil, LongHorizonApproachesUnboundedUntil) {
  const core::Mrm model = models::make_wavelan();
  const std::vector<bool> all(5, true);
  const auto busy = model.labels().states_with("busy");
  const auto bounded = until_probabilities(model, all, busy, logic::up_to(1000.0), Interval{});
  const auto unbounded = unbounded_until_probabilities(model, all, busy);
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(bounded[s].probability, unbounded[s], 1e-6) << "state " << s;
  }
}

TEST(TimeBoundedUntil, MonotoneInHorizon) {
  const core::Mrm model = models::make_wavelan();
  const auto idle = model.labels().states_with("idle");
  const auto busy = model.labels().states_with("busy");
  double prev = 0.0;
  for (double t : {0.01, 0.05, 0.1, 0.5, 1.0}) {
    const auto values = until_probabilities(model, idle, busy, logic::up_to(t), Interval{});
    EXPECT_GE(values[models::kWavelanIdle].probability, prev - 1e-12);
    prev = values[models::kWavelanIdle].probability;
  }
}

TEST(TimeBoundedUntil, RejectsUnsupportedTimeShapes) {
  const core::Mrm model = models::make_wavelan();
  const std::vector<bool> all(5, true);
  // [t1, infinity) has no algorithm in the thesis or in [Bai03]'s two-phase
  // form as implemented here; bounded [t1,t2] is covered (see
  // test_until_interval.cpp).
  EXPECT_THROW(until_probabilities(
                   model, all, all,
                   Interval(1.0, std::numeric_limits<double>::infinity()), Interval{}),
               UnsupportedFormulaError);
}

}  // namespace
}  // namespace csrlmrm::checker

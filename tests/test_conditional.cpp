// RewardStructureContext: the eq. (4.9)/(4.10) wiring from a path signature
// (n, k, j) to an Omega query.
#include "numeric/conditional.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace csrlmrm::numeric {
namespace {

TEST(Conditional, ThresholdMatchesExample44) {
  // Example 4.4: rewards 5>3>1>0, impulses 2>1>0, j = <4,2,0>, t = 5, r = 15
  // gives r' = 15/5 - 0 - (2*4 + 1*2)/5 = 1.
  RewardStructureContext context({5.0, 3.0, 1.0, 0.0}, {2.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(context.threshold({4, 2, 0}, 5.0, 15.0), 1.0);
}

TEST(Conditional, Example44ConditionalProbability) {
  RewardStructureContext context({5.0, 3.0, 1.0, 0.0}, {2.0, 1.0, 0.0});
  EXPECT_NEAR(context.conditional_probability({1, 2, 2, 2}, {4, 2, 0}, 5.0, 15.0),
              47.0 / 675.0, 1e-12);
}

TEST(Conditional, SmallestRewardShiftsThreshold) {
  // With r_{K+1} = 2 the baseline accumulation is 2t, subtracted from r/t.
  RewardStructureContext context({5.0, 2.0}, {});
  EXPECT_DOUBLE_EQ(context.threshold({}, 4.0, 20.0), 20.0 / 4.0 - 2.0);
}

TEST(Conditional, SingleRewardClassIsDeterministic) {
  // All states share reward 3: Y(t) = 3t (+ impulses), so the conditional is
  // an indicator.
  RewardStructureContext context({3.0}, {});
  EXPECT_DOUBLE_EQ(context.conditional_probability({5}, {}, 2.0, 6.0), 1.0);   // 3*2 <= 6
  EXPECT_DOUBLE_EQ(context.conditional_probability({5}, {}, 2.0, 5.9), 0.0);   // 3*2 > 5.9
}

TEST(Conditional, ImpulsesConsumeBudgetDeterministically) {
  // Zero state rewards: Y(t) = sum of impulses.
  RewardStructureContext context({0.0}, {4.0, 1.0});
  EXPECT_DOUBLE_EQ(context.conditional_probability({3}, {2, 1}, 1.0, 9.0), 1.0);  // 9 <= 9
  EXPECT_DOUBLE_EQ(context.conditional_probability({3}, {2, 1}, 1.0, 8.9), 0.0);  // 9 > 8.9
}

TEST(Conditional, TwoClassPathMatchesUniformClosedForm) {
  // One residence at reward a, k more at reward 0, n = k interior points:
  // Y(t) = a * t * U_(1) (the first order statistic of k uniforms), so
  // Pr{Y <= r} = 1 - (1 - r/(a t))^k.
  const double a = 2.0;
  RewardStructureContext context({a, 0.0}, {});
  const double t = 3.0;
  const double r = 1.5;
  const unsigned k = 4;
  const double u = r / (a * t);
  const double expected = 1.0 - std::pow(1.0 - u, static_cast<double>(k));
  EXPECT_NEAR(context.conditional_probability({1, k}, {}, t, r), expected, 1e-12);
}

TEST(Conditional, EvaluatorsAreSharedPerThreshold) {
  RewardStructureContext context({2.0, 0.0}, {1.0, 0.0});
  // Same impulse signature -> same r' -> one evaluator.
  context.conditional_probability({1, 1}, {1, 0}, 1.0, 1.5);
  context.conditional_probability({2, 1}, {1, 0}, 1.0, 1.5);
  EXPECT_EQ(context.evaluator_count(), 1u);
  // Different impulse count changes r' -> second evaluator.
  context.conditional_probability({1, 1}, {0, 1}, 1.0, 1.5);
  EXPECT_EQ(context.evaluator_count(), 2u);
}

TEST(Conditional, RejectsMalformedInput) {
  EXPECT_THROW(RewardStructureContext({}, {}), std::invalid_argument);
  EXPECT_THROW(RewardStructureContext({1.0, 2.0}, {}), std::invalid_argument);  // ascending
  EXPECT_THROW(RewardStructureContext({2.0, 2.0}, {}), std::invalid_argument);  // duplicate
  RewardStructureContext context({1.0, 0.0}, {});
  EXPECT_THROW(context.conditional_probability({1}, {}, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(context.conditional_probability({0, 0}, {}, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(context.conditional_probability({1, 1}, {}, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(context.conditional_probability({1, 1}, {}, 1.0, -1.0), std::invalid_argument);
}

TEST(Conditional, MonotoneInRewardBound) {
  RewardStructureContext context({4.0, 1.0, 0.0}, {2.0, 0.0});
  double prev = 0.0;
  for (double r = 0.0; r <= 14.0; r += 0.5) {
    const double p = context.conditional_probability({2, 3, 2}, {1, 2}, 3.0, r);
    EXPECT_GE(p, prev - 1e-12) << "r=" << r;
    prev = p;
  }
}

}  // namespace
}  // namespace csrlmrm::numeric

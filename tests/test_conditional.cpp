// RewardStructureContext: the eq. (4.9)/(4.10) wiring from a path signature
// (n, k, j) to an Omega query.
#include "numeric/conditional.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace csrlmrm::numeric {
namespace {

TEST(Conditional, ThresholdMatchesExample44) {
  // Example 4.4: rewards 5>3>1>0, impulses 2>1>0, j = <4,2,0>, t = 5, r = 15
  // gives r' = 15/5 - 0 - (2*4 + 1*2)/5 = 1.
  RewardStructureContext context({5.0, 3.0, 1.0, 0.0}, {2.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(context.threshold({4, 2, 0}, 5.0, 15.0), 1.0);
}

TEST(Conditional, Example44ConditionalProbability) {
  RewardStructureContext context({5.0, 3.0, 1.0, 0.0}, {2.0, 1.0, 0.0});
  EXPECT_NEAR(context.conditional_probability({1, 2, 2, 2}, {4, 2, 0}, 5.0, 15.0),
              47.0 / 675.0, 1e-12);
}

TEST(Conditional, SmallestRewardShiftsThreshold) {
  // With r_{K+1} = 2 the baseline accumulation is 2t, subtracted from r/t.
  RewardStructureContext context({5.0, 2.0}, {});
  EXPECT_DOUBLE_EQ(context.threshold({}, 4.0, 20.0), 20.0 / 4.0 - 2.0);
}

TEST(Conditional, SingleRewardClassIsDeterministic) {
  // All states share reward 3: Y(t) = 3t (+ impulses), so the conditional is
  // an indicator.
  RewardStructureContext context({3.0}, {});
  EXPECT_DOUBLE_EQ(context.conditional_probability({5}, {}, 2.0, 6.0), 1.0);   // 3*2 <= 6
  EXPECT_DOUBLE_EQ(context.conditional_probability({5}, {}, 2.0, 5.9), 0.0);   // 3*2 > 5.9
}

TEST(Conditional, ImpulsesConsumeBudgetDeterministically) {
  // Zero state rewards: Y(t) = sum of impulses.
  RewardStructureContext context({0.0}, {4.0, 1.0});
  EXPECT_DOUBLE_EQ(context.conditional_probability({3}, {2, 1}, 1.0, 9.0), 1.0);  // 9 <= 9
  EXPECT_DOUBLE_EQ(context.conditional_probability({3}, {2, 1}, 1.0, 8.9), 0.0);  // 9 > 8.9
}

TEST(Conditional, TwoClassPathMatchesUniformClosedForm) {
  // One residence at reward a, k more at reward 0, n = k interior points:
  // Y(t) = a * t * U_(1) (the first order statistic of k uniforms), so
  // Pr{Y <= r} = 1 - (1 - r/(a t))^k.
  const double a = 2.0;
  RewardStructureContext context({a, 0.0}, {});
  const double t = 3.0;
  const double r = 1.5;
  const unsigned k = 4;
  const double u = r / (a * t);
  const double expected = 1.0 - std::pow(1.0 - u, static_cast<double>(k));
  EXPECT_NEAR(context.conditional_probability({1, k}, {}, t, r), expected, 1e-12);
}

TEST(Conditional, EvaluatorsAreSharedPerThreshold) {
  RewardStructureContext context({2.0, 0.0}, {1.0, 0.0});
  // Same impulse signature -> same r' -> one evaluator.
  context.conditional_probability({1, 1}, {1, 0}, 1.0, 1.5);
  context.conditional_probability({2, 1}, {1, 0}, 1.0, 1.5);
  EXPECT_EQ(context.evaluator_count(), 1u);
  // Different impulse count changes r' -> second evaluator.
  context.conditional_probability({1, 1}, {0, 1}, 1.0, 1.5);
  EXPECT_EQ(context.evaluator_count(), 2u);
}

TEST(Conditional, RejectsMalformedInput) {
  EXPECT_THROW(RewardStructureContext({}, {}), std::invalid_argument);
  EXPECT_THROW(RewardStructureContext({1.0, 2.0}, {}), std::invalid_argument);  // ascending
  EXPECT_THROW(RewardStructureContext({2.0, 2.0}, {}), std::invalid_argument);  // duplicate
  RewardStructureContext context({1.0, 0.0}, {});
  EXPECT_THROW(context.conditional_probability({1}, {}, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(context.conditional_probability({0, 0}, {}, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(context.conditional_probability({1, 1}, {}, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(context.conditional_probability({1, 1}, {}, 1.0, -1.0), std::invalid_argument);
}

TEST(Conditional, CanonicalThresholdSnapsRoundingNoise) {
  // Thresholds that agree mathematically but differ by floating-point
  // rounding must canonicalize to one representative...
  const double r_prime = 1.0 / 3.0;
  const double jittered = std::nextafter(r_prime, 1.0);
  EXPECT_EQ(canonical_threshold(r_prime), canonical_threshold(jittered));
  // ...idempotently...
  EXPECT_EQ(canonical_threshold(canonical_threshold(r_prime)), canonical_threshold(r_prime));
  // ...while zero and non-finite values pass through untouched and genuinely
  // distinct thresholds stay distinct (the snap keeps 40 mantissa bits).
  EXPECT_EQ(canonical_threshold(0.0), 0.0);
  EXPECT_TRUE(std::isinf(canonical_threshold(HUGE_VAL)));
  EXPECT_NE(canonical_threshold(1.0), canonical_threshold(1.0 + 1e-6));
}

TEST(Conditional, EvaluatorCacheIsRobustToThresholdRoundingNoise) {
  // Regression for the quantized evaluators_ key: querying with a threshold
  // perturbed by one ulp — as arises when two impulse signatures with equal
  // totals compute r' along different floating-point paths — must hit the
  // same cached evaluator (count stays 1) and return bitwise the same
  // probability.
  RewardStructureContext context({2.0, 1.0, 0.0}, {1.0, 0.0});
  const SpacingCounts k{1, 2, 1};
  const double r_prime = context.threshold({2, 1}, 3.0, 4.0);
  const double exact = context.conditional_probability_for_threshold(k, r_prime);
  EXPECT_EQ(context.evaluator_count(), 1u);
  const double jittered =
      context.conditional_probability_for_threshold(k, std::nextafter(r_prime, 1e9));
  EXPECT_EQ(context.evaluator_count(), 1u);
  EXPECT_EQ(jittered, exact);  // same evaluator, same memo table -> same bits
  // A genuinely different threshold still builds its own evaluator.
  context.conditional_probability_for_threshold(k, r_prime + 0.25);
  EXPECT_EQ(context.evaluator_count(), 2u);
}

TEST(Conditional, ThresholdFormGroupsEquivalentImpulseSignatures) {
  // conditional_probability(k, j, t, r) and the (k, r')-grouped entry point
  // used by the signature-class DP engine must agree bitwise: the j
  // dependence is entirely inside r' (eq. 4.9).
  RewardStructureContext context({3.0, 1.0, 0.0}, {2.0, 1.0, 0.0});
  const SpacingCounts k{2, 1, 1};
  const double t = 2.5;
  const double r = 6.0;
  // <1,0> and <0,2> carry the same impulse total 2 -> same r' -> one shared
  // evaluation for both signatures.
  const SpacingCounts j_voter{1, 0, 2};
  const SpacingCounts j_modules{0, 2, 1};
  const double via_j = context.conditional_probability(k, j_voter, t, r);
  EXPECT_EQ(context.conditional_probability(k, j_modules, t, r), via_j);
  EXPECT_EQ(context.conditional_probability_for_threshold(
                k, context.threshold(j_voter, t, r)),
            via_j);
  EXPECT_EQ(context.evaluator_count(), 1u);
}

TEST(Conditional, MonotoneInRewardBound) {
  RewardStructureContext context({4.0, 1.0, 0.0}, {2.0, 0.0});
  double prev = 0.0;
  for (double r = 0.0; r <= 14.0; r += 0.5) {
    const double p = context.conditional_probability({2, 3, 2}, {1, 2}, 3.0, r);
    EXPECT_GE(p, prev - 1e-12) << "r=" << r;
    prev = p;
  }
}

}  // namespace
}  // namespace csrlmrm::numeric

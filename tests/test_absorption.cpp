// Expected hitting times and costs (MTTF-style measures) against closed
// forms and simulation-grade sanity.
#include "checker/absorption.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/tmr.hpp"
#include "models/wavelan.hpp"

namespace csrlmrm::checker {
namespace {

std::vector<bool> mask(std::size_t n, std::initializer_list<int> members) {
  std::vector<bool> m(n, false);
  for (int i : members) m[static_cast<std::size_t>(i)] = true;
  return m;
}

TEST(ExpectedTimeToHit, ExponentialStageIsOneOverMu) {
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 2.5);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)),
                        std::vector<double>(2, 0.0));
  const auto times = expected_time_to_hit(model, mask(2, {1}));
  EXPECT_NEAR(times[0], 1.0 / 2.5, 1e-10);
  EXPECT_DOUBLE_EQ(times[1], 0.0);
}

TEST(ExpectedTimeToHit, ErlangChainSumsStageMeans) {
  // 0 -> 1 -> 2 -> 3 with rates 1, 2, 4: E[T] = 1 + 1/2 + 1/4.
  core::RateMatrixBuilder rates(4);
  rates.add(0, 1, 1.0);
  rates.add(1, 2, 2.0);
  rates.add(2, 3, 4.0);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(4)),
                        std::vector<double>(4, 0.0));
  const auto times = expected_time_to_hit(model, mask(4, {3}));
  EXPECT_NEAR(times[0], 1.75, 1e-10);
  EXPECT_NEAR(times[1], 0.75, 1e-10);
  EXPECT_NEAR(times[2], 0.25, 1e-10);
}

TEST(ExpectedTimeToHit, CycleWithEscapeMatchesFirstStepAnalysis) {
  // 0 <-> 1, 1 -> 2 (target). From 1: E1 = 1/(b+c) + b/(b+c) E0;
  // E0 = 1/a + E1.
  const double a = 2.0;
  const double b = 1.0;
  const double c = 3.0;
  core::RateMatrixBuilder rates(3);
  rates.add(0, 1, a);
  rates.add(1, 0, b);
  rates.add(1, 2, c);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(3)),
                        std::vector<double>(3, 0.0));
  const auto times = expected_time_to_hit(model, mask(3, {2}));
  // Solve by hand: E1 = 1/(b+c) + b/(b+c)(1/a + E1) ->
  // E1 (1 - b/(b+c)) = 1/(b+c) + b/(a(b+c))
  const double e1 = (1.0 / (b + c) + b / (a * (b + c))) / (1.0 - b / (b + c));
  EXPECT_NEAR(times[1], e1, 1e-10);
  EXPECT_NEAR(times[0], 1.0 / a + e1, 1e-10);
}

TEST(ExpectedTimeToHit, EscapableStatesAreInfinite) {
  // 0 can drift to the absorbing trap 2 instead of the target 1.
  core::RateMatrixBuilder rates(3);
  rates.add(0, 1, 1.0);
  rates.add(0, 2, 1.0);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(3)),
                        std::vector<double>(3, 0.0));
  const auto times = expected_time_to_hit(model, mask(3, {1}));
  EXPECT_TRUE(std::isinf(times[0]));
  EXPECT_DOUBLE_EQ(times[1], 0.0);
  EXPECT_TRUE(std::isinf(times[2]));
}

TEST(ExpectedTimeToHit, TmrTimeToFailureIsDecades) {
  // MTTF of the TMR system: failures are rare and repairs fast, so the mean
  // time to the failed set is orders of magnitude beyond the repair scale.
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  const auto times = expected_time_to_hit(model, model.labels().states_with("failed"));
  EXPECT_GT(times[0], 5000.0);   // hours; voter MTTF alone is 10000 h
  EXPECT_LT(times[0], 20000.0);
  EXPECT_GT(times[0], times[1]);  // a degraded start fails sooner
}

TEST(ExpectedRewardToHit, CountsRateAndImpulseRewards) {
  // 0 -> 1 at mu, rho(0) = c, impulse iota: E[Y] = c/mu + iota.
  const double mu = 2.0;
  const double c = 3.0;
  const double iota = 0.5;
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, mu);
  core::ImpulseRewardsBuilder impulses(2);
  impulses.add(0, 1, iota);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)), {c, 0.0},
                        impulses.build());
  const auto cost = expected_reward_to_hit(model, mask(2, {1}));
  EXPECT_NEAR(cost[0], c / mu + iota, 1e-10);
}

TEST(ExpectedRewardToHit, WavelanEnergyUntilBusy) {
  // Energy spent until the modem first becomes busy, from idle: dominated
  // by idle dwell plus the entry impulse; from off it also pays the
  // off->sleep->idle trail. Sanity: strictly larger from off than from idle.
  const core::Mrm model = models::make_wavelan();
  const auto cost = expected_reward_to_hit(model, model.labels().states_with("busy"));
  EXPECT_GT(cost[models::kWavelanOff], cost[models::kWavelanIdle]);
  EXPECT_GT(cost[models::kWavelanIdle], 0.0);
  EXPECT_DOUBLE_EQ(cost[models::kWavelanReceive], 0.0);
}

TEST(ExpectedRewardToHit, ZeroRewardModelCostsNothing) {
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)),
                        std::vector<double>(2, 0.0));
  const auto cost = expected_reward_to_hit(model, mask(2, {1}));
  EXPECT_DOUBLE_EQ(cost[0], 0.0);
}

TEST(ExpectedTimeToHit, ConsistentWithRewardUnderUnitRates) {
  // With rho = 1 everywhere and no impulses, expected reward = expected time.
  const core::Mrm base = models::make_wavelan();
  const core::Mrm unit(base.ctmc(), std::vector<double>(5, 1.0));
  const auto target = unit.labels().states_with("sleep");
  const auto times = expected_time_to_hit(unit, target);
  const auto cost = expected_reward_to_hit(unit, target);
  for (std::size_t s = 0; s < 5; ++s) EXPECT_NEAR(times[s], cost[s], 1e-9) << "state " << s;
}

TEST(ExpectedTimeToHit, RejectsBadInput) {
  const core::Mrm model = models::make_wavelan();
  EXPECT_THROW(expected_time_to_hit(model, std::vector<bool>(3, true)),
               std::invalid_argument);
  EXPECT_THROW(expected_time_to_hit(model, std::vector<bool>(5, false)),
               std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::checker

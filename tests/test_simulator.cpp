// Monte Carlo simulator: closed forms, agreement with the exact engines,
// and semantics corners (arrival-instant witnesses, general intervals).
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "checker/next.hpp"
#include "checker/until.hpp"
#include "models/wavelan.hpp"

namespace csrlmrm::sim {
namespace {

using logic::Interval;

std::vector<bool> mask(std::size_t n, std::initializer_list<int> members) {
  std::vector<bool> m(n, false);
  for (int i : members) m[static_cast<std::size_t>(i)] = true;
  return m;
}

core::Mrm death_chain(double mu, double c, double iota = 0.0) {
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, mu);
  core::ImpulseRewardsBuilder impulses(2);
  if (iota > 0.0) impulses.add(0, 1, iota);
  return core::Mrm(core::Ctmc(rates.build(), core::Labeling(2)), {c, 0.0}, impulses.build());
}

TEST(Simulator, UntilMatchesExponentialClosedForm) {
  const double mu = 0.7;
  const core::Mrm model = death_chain(mu, 0.0);
  const double t = 2.0;
  const auto estimate = estimate_until(model, 0, std::vector<bool>(2, true), mask(2, {1}),
                                       logic::up_to(t), Interval{}, {200000, 42});
  EXPECT_NEAR(estimate.mean, 1.0 - std::exp(-mu * t), 3.0 * estimate.half_width_95 / 1.96);
  EXPECT_LT(estimate.half_width_95, 0.01);
}

TEST(Simulator, RewardBoundMatchesEngineValue) {
  // 0 -> 1 at mu with rho(0) = c, impulse iota: P = 1 - exp(-mu (r-iota)/c).
  const double mu = 1.1;
  const core::Mrm model = death_chain(mu, 2.0, 1.0);
  const double t = 10.0;
  const double r = 5.0;  // jump deadline (5-1)/2 = 2
  const auto estimate = estimate_until(model, 0, std::vector<bool>(2, true), mask(2, {1}),
                                       logic::up_to(t), logic::up_to(r), {200000, 7});
  EXPECT_NEAR(estimate.mean, 1.0 - std::exp(-mu * 2.0), 3.0 * estimate.half_width_95 / 1.96);
}

TEST(Simulator, AgreesWithUniformizationOnWavelan) {
  const core::Mrm model = models::make_wavelan();
  const auto idle = model.labels().states_with("idle");
  const auto busy = model.labels().states_with("busy");
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-15;
  const auto exact = checker::until_probabilities(model, idle, busy, logic::up_to(2.0),
                                                  logic::up_to(2000.0), options);
  const auto estimate = estimate_until(model, models::kWavelanIdle, idle, busy,
                                       logic::up_to(2.0), logic::up_to(2000.0), {300000, 99});
  EXPECT_NEAR(estimate.mean, exact[models::kWavelanIdle].probability,
              3.0 * estimate.half_width_95 / 1.96);
}

TEST(Simulator, ArrivalInstantWitnessForNonPhiPsiStates) {
  // 0 -> 1 where 1 |= Psi but not Phi: the formula can only be witnessed at
  // the arrival instant, so a reward lower bound strictly above the
  // at-arrival accumulation forces probability 0.
  const double mu = 2.0;
  core::Mrm model = death_chain(mu, 0.0, 1.0);  // arrival reward is exactly 1
  const auto phi = mask(2, {0});
  const auto psi = mask(2, {1});
  const auto blocked =
      estimate_until(model, 0, phi, psi, logic::up_to(5.0),
                     Interval(2.0, std::numeric_limits<double>::infinity()), {20000, 5});
  EXPECT_DOUBLE_EQ(blocked.mean, 0.0);
  const auto allowed = estimate_until(model, 0, phi, psi, logic::up_to(5.0),
                                      Interval(1.0, 2.0), {20000, 5});
  EXPECT_GT(allowed.mean, 0.9);
}

TEST(Simulator, ResidenceWindowWitnessForPhiPsiStates) {
  // If the Psi state also satisfies Phi, waiting inside it can realize a
  // reward lower bound: rho(1) = 1 keeps accumulating after arrival.
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 2.0);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)), {0.0, 1.0});
  const auto estimate = estimate_until(
      model, 0, std::vector<bool>(2, true), mask(2, {1}), logic::up_to(100.0),
      Interval(3.0, std::numeric_limits<double>::infinity()), {20000, 11});
  EXPECT_DOUBLE_EQ(estimate.mean, 1.0);  // absorbing: the reward always gets there
}

TEST(Simulator, TimeLowerBoundsAreRespected) {
  // P(0, tt U^[a,b] {1}) for the death chain: arrival in [0,b] suffices iff
  // we are still in 1 (absorbing) during [a,b]: P = Pr{jump <= b} since the
  // absorbing target persists; with target NOT absorbing it differs, so use
  // the simple absorbing case as a closed form.
  const double mu = 1.0;
  const core::Mrm model = death_chain(mu, 0.0);
  const double a = 1.0;
  const double b = 2.0;
  const auto estimate = estimate_until(model, 0, std::vector<bool>(2, true), mask(2, {1}),
                                       Interval(a, b), Interval{}, {200000, 3});
  EXPECT_NEAR(estimate.mean, 1.0 - std::exp(-mu * b), 3.0 * estimate.half_width_95 / 1.96);
}

TEST(Simulator, NextAgreesWithExactValues) {
  const core::Mrm model = models::make_wavelan();
  const auto busy = model.labels().states_with("busy");
  const auto exact =
      checker::next_probabilities(model, busy, logic::up_to(0.1), logic::up_to(100.0));
  MrmSimulator simulator(model, 123);
  std::size_t hits = 0;
  const std::size_t samples = 200000;
  for (std::size_t i = 0; i < samples; ++i) {
    hits += simulator.sample_next(models::kWavelanIdle, busy, logic::up_to(0.1),
                                  logic::up_to(100.0));
  }
  const double estimate = static_cast<double>(hits) / static_cast<double>(samples);
  EXPECT_NEAR(estimate, exact[models::kWavelanIdle], 0.005);
}

TEST(Simulator, AccumulatedRewardHasCorrectMean) {
  // Two-state cycle: long-run gain rate = pi0 rho0 + pi1 rho1 + flux * iota.
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  rates.add(1, 0, 1.0);
  core::ImpulseRewardsBuilder impulses(2);
  impulses.add(0, 1, 0.5);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)), {2.0, 4.0},
                        impulses.build());
  const double t = 50.0;
  const auto estimate = estimate_expected_reward(model, 0, t, {50000, 17});
  // pi = (1/2, 1/2); E[Y]/t ~ 0.5*2 + 0.5*4 + 0.5(rate 1 * iota 0.5) = 3.25.
  EXPECT_NEAR(estimate.mean / t, 3.25, 0.05);
}

TEST(Simulator, PerformabilityEstimateIsMonotoneInR) {
  const core::Mrm model = models::make_wavelan();
  double prev = -1.0;
  for (double r : {100.0, 500.0, 2000.0}) {
    const auto estimate = estimate_performability(model, models::kWavelanOff, 1.0, r,
                                                  {20000, 23});
    EXPECT_GE(estimate.mean, prev);
    prev = estimate.mean;
  }
}

TEST(Simulator, DeterministicPerSeed) {
  const core::Mrm model = models::make_wavelan();
  const auto busy = model.labels().states_with("busy");
  const auto idle = model.labels().states_with("idle");
  const auto a = estimate_until(model, models::kWavelanIdle, idle, busy, logic::up_to(1.0),
                                Interval{}, {5000, 77});
  const auto b = estimate_until(model, models::kWavelanIdle, idle, busy, logic::up_to(1.0),
                                Interval{}, {5000, 77});
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

TEST(Simulator, RejectsBadInput) {
  const core::Mrm model = models::make_wavelan();
  const std::vector<bool> all(5, true);
  EXPECT_THROW(estimate_until(model, 0, all, all, Interval{}, Interval{}, {1000, 1}),
               std::invalid_argument);  // unbounded horizon
  EXPECT_THROW(estimate_until(model, 99, all, all, logic::up_to(1.0), Interval{}, {10, 1}),
               std::invalid_argument);
  EXPECT_THROW(estimate_until(model, 0, all, all, logic::up_to(1.0), Interval{}, {0, 1}),
               std::invalid_argument);
  MrmSimulator simulator(model, 1);
  EXPECT_THROW(simulator.sample_accumulated_reward(0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::sim

// Steady-state detection in the uniformization series (transient.hpp) and
// the backward hit-probability series behind the large-model P1 until path.
//
// The contract under test: with detection OFF the checked entry points are
// bitwise identical to the historical solver; with detection ON on a stiff
// model the series is cut early and the folded result stays within the
// reported steady_error of the full series; and the backward series agrees
// with the forward per-start fan-out it replaces.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "checker/until.hpp"
#include "core/approx.hpp"
#include "models/generator.hpp"
#include "models/mm1k.hpp"
#include "models/random_mrm.hpp"
#include "numeric/transient.hpp"

namespace csrlmrm {
namespace {

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// The stiff workload: an overloaded-then-drained M/M/1/50 queue. Lambda is
/// arrival + service = 220, so Lambda*t ~ 1e5 Poisson terms at t = 500 —
/// exactly the regime steady-state detection exists for.
core::Mrm make_stiff_queue() {
  models::Mm1kConfig config;
  config.capacity = 50;
  config.arrival_rate = 100.0;
  config.service_rate = 120.0;
  return models::make_mm1k(config);
}

TEST(SteadyDetection, OffIsBitwiseIdenticalToLegacyDistribution) {
  for (std::uint32_t seed = 0; seed < 10; ++seed) {
    const core::Mrm model = models::make_random_mrm(seed);
    std::vector<double> initial(model.num_states(), 0.0);
    initial[seed % model.num_states()] = 1.0;
    for (const double t : {0.5, 3.0}) {
      const auto legacy = numeric::transient_distribution(model.rates(), initial, t);
      const auto checked =
          numeric::transient_distribution_checked(model.rates(), initial, t);
      EXPECT_TRUE(bitwise_equal(checked.values, legacy)) << "seed=" << seed << " t=" << t;
      EXPECT_FALSE(checked.steady_state_detected);
      EXPECT_TRUE(core::exactly_zero(checked.steady_error));
      EXPECT_GT(checked.series_terms, 0u);
    }
  }
}

TEST(SteadyDetection, FiresOnStiffQueueWithBoundedError) {
  const core::Mrm model = make_stiff_queue();
  std::vector<double> initial(model.num_states(), 0.0);
  initial[0] = 1.0;
  const double t = 500.0;

  numeric::TransientOptions off;
  const auto full = numeric::transient_distribution_checked(model.rates(), initial, t, off);
  ASSERT_FALSE(full.steady_state_detected);

  numeric::TransientOptions on;
  on.detect_steady_state = true;
  on.steady_epsilon = 1e-10;
  const auto cut = numeric::transient_distribution_checked(model.rates(), initial, t, on);

  EXPECT_TRUE(cut.steady_state_detected);
  EXPECT_LT(cut.series_terms, full.series_terms);
  EXPECT_GT(cut.steady_error, 0.0);
  EXPECT_LE(cut.steady_error, on.steady_epsilon);
  // The fold error is two-sided; the full run additionally truncates epsilon.
  const double tolerance = cut.steady_error + off.epsilon + on.epsilon;
  ASSERT_EQ(cut.values.size(), full.values.size());
  double mass = 0.0;
  for (std::size_t s = 0; s < cut.values.size(); ++s) {
    EXPECT_NEAR(cut.values[s], full.values[s], tolerance) << "state " << s;
    mass += cut.values[s];
  }
  EXPECT_NEAR(mass, 1.0, 1e-8);
}

TEST(SteadyDetection, BackwardHitProbabilitiesMatchForwardFanout) {
  const core::Mrm model = models::make_mm1k();
  const std::vector<bool> target = model.labels().states_with("full");
  const double t = 2.0;
  const auto hit = numeric::transient_hit_probabilities(model.rates(), target, t);
  ASSERT_EQ(hit.values.size(), model.num_states());
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    const auto forward = numeric::transient_distribution_from(model.rates(), s, t);
    double expected = 0.0;
    for (core::StateIndex v = 0; v < model.num_states(); ++v) {
      if (target[v]) expected += forward[v];
    }
    EXPECT_NEAR(hit.values[s], expected, 1e-9) << "start " << s;
  }
}

TEST(SteadyDetection, BackwardSeriesSteadyDetectionBoundsError) {
  const core::Mrm model = make_stiff_queue();
  const std::vector<bool> target = model.labels().states_with("empty");
  const double t = 500.0;

  numeric::TransientOptions off;
  const auto full = numeric::transient_hit_probabilities(model.rates(), target, t, off);
  numeric::TransientOptions on;
  on.detect_steady_state = true;
  on.steady_epsilon = 1e-10;
  const auto cut = numeric::transient_hit_probabilities(model.rates(), target, t, on);

  EXPECT_TRUE(cut.steady_state_detected);
  EXPECT_LT(cut.series_terms, full.series_terms);
  EXPECT_LE(cut.steady_error, on.steady_epsilon);
  const double tolerance = cut.steady_error + off.epsilon + on.epsilon;
  for (std::size_t s = 0; s < cut.values.size(); ++s) {
    EXPECT_NEAR(cut.values[s], full.values[s], tolerance) << "start " << s;
    EXPECT_GE(cut.values[s], -tolerance);
    EXPECT_LE(cut.values[s], 1.0 + tolerance);
  }
}

TEST(SteadyDetection, LargeUntilBackwardPathAgreesWithForwardSeries) {
  // 70x70 = 4900 states crosses the backward-until threshold (4096), so the
  // P1 query below runs the one-shot backward series. The grid sink is
  // already absorbing, so Pr{ true U^[0,t] delivered } equals the plain
  // transient membership of the sink — computable independently through the
  // forward series for a cross-check of the two routes.
  const core::Mrm model = models::make_generated_mrm("grid:width=70,height=70");
  ASSERT_GE(model.num_states(), 4096u);
  const std::vector<bool> delivered = model.labels().states_with("delivered");
  const double t = 40.0;

  const auto values = checker::until_probabilities(
      model, std::vector<bool>(model.num_states(), true), delivered, logic::up_to(t),
      logic::Interval{});

  const auto forward = numeric::transient_distribution_from(model.rates(), 0, t);
  double expected = 0.0;
  for (core::StateIndex v = 0; v < model.num_states(); ++v) {
    if (delivered[v]) expected += forward[v];
  }
  EXPECT_NEAR(values[0].probability, expected, 1e-8);
  EXPECT_GE(values[0].error_bound, 0.0);
  EXPECT_LT(values[0].error_bound, 1e-6);
  // Sink states satisfy the until immediately.
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    if (delivered[s]) {
      EXPECT_NEAR(values[s].probability, 1.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace csrlmrm

#include "graph/reachability.hpp"

#include <gtest/gtest.h>

#include "linalg/csr_matrix.hpp"

namespace csrlmrm::graph {
namespace {

linalg::CsrMatrix graph_from_edges(std::size_t n,
                                   std::initializer_list<std::pair<int, int>> edges) {
  linalg::CsrBuilder builder(n, n);
  for (const auto& [from, to] : edges) {
    builder.add(static_cast<std::size_t>(from), static_cast<std::size_t>(to), 1.0);
  }
  return builder.build();
}

std::vector<bool> mask(std::size_t n, std::initializer_list<int> members) {
  std::vector<bool> m(n, false);
  for (int i : members) m[static_cast<std::size_t>(i)] = true;
  return m;
}

TEST(Reachability, ForwardIncludesSources) {
  const auto g = graph_from_edges(3, {{0, 1}});
  const auto reach = forward_reachable(g, mask(3, {0}));
  EXPECT_EQ(reach, mask(3, {0, 1}));
}

TEST(Reachability, ForwardFollowsChains) {
  const auto g = graph_from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(forward_reachable(g, mask(4, {0})), mask(4, {0, 1, 2, 3}));
  EXPECT_EQ(forward_reachable(g, mask(4, {2})), mask(4, {2, 3}));
}

TEST(Reachability, ForwardDoesNotGoBackwards) {
  const auto g = graph_from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(forward_reachable(g, mask(3, {2})), mask(3, {2}));
}

TEST(Reachability, BackwardFindsAncestors) {
  const auto g = graph_from_edges(4, {{0, 1}, {1, 2}, {3, 2}});
  EXPECT_EQ(backward_reachable(g, mask(4, {2})), mask(4, {0, 1, 2, 3}));
}

TEST(Reachability, BackwardViaRespectsAllowedMask) {
  // 0 -> 1 -> 3 and 0 -> 2 -> 3; only intermediate 1 is allowed.
  const auto g = graph_from_edges(4, {{0, 1}, {1, 3}, {0, 2}, {2, 3}});
  const auto reach = backward_reachable_via(g, mask(4, {0, 1}), mask(4, {3}));
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_FALSE(reach[2]);  // 2 can reach 3 but is not allowed to pass
  EXPECT_TRUE(reach[3]);
}

TEST(Reachability, TargetsCountEvenWhenNotAllowed) {
  // Targets are seeded regardless of the allowed mask (a Psi-state satisfies
  // Phi U Psi immediately, eq. 3.8 first case).
  const auto g = graph_from_edges(2, {{0, 1}});
  const auto reach = backward_reachable_via(g, mask(2, {0}), mask(2, {1}));
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[0]);
}

TEST(Reachability, BlockedPathIsUnreachable) {
  // 0 -> 1 -> 2 with 1 not allowed: 0 cannot reach 2.
  const auto g = graph_from_edges(3, {{0, 1}, {1, 2}});
  const auto reach = backward_reachable_via(g, mask(3, {0}), mask(3, {2}));
  EXPECT_FALSE(reach[0]);
  EXPECT_FALSE(reach[1]);
  EXPECT_TRUE(reach[2]);
}

TEST(Reachability, RejectsMaskSizeMismatch) {
  const auto g = graph_from_edges(2, {});
  EXPECT_THROW(forward_reachable(g, mask(3, {})), std::invalid_argument);
  EXPECT_THROW(backward_reachable(g, mask(1, {})), std::invalid_argument);
}

TEST(Reachability, CyclesAreHandled) {
  const auto g = graph_from_edges(3, {{0, 1}, {1, 0}, {1, 2}});
  EXPECT_EQ(forward_reachable(g, mask(3, {0})), mask(3, {0, 1, 2}));
  EXPECT_EQ(backward_reachable(g, mask(3, {2})), mask(3, {0, 1, 2}));
}

}  // namespace
}  // namespace csrlmrm::graph

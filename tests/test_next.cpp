// Next-operator evaluation (eq. 3.4) against closed forms on the WaveLAN
// model.
#include "checker/next.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/wavelan.hpp"

namespace csrlmrm::checker {
namespace {

using logic::Interval;

class NextOnWavelan : public ::testing::Test {
 protected:
  core::Mrm model_ = models::make_wavelan();
  std::vector<bool> busy_ = model_.labels().states_with("busy");
  static constexpr double kIdleExit = 14.25;  // E(idle)
};

TEST_F(NextOnWavelan, UnboundedNextIsJumpProbability) {
  // Eq. (3.5): P(s, X Phi) = sum_{s'|=Phi} P(s,s').
  const auto p = next_probabilities(model_, busy_, Interval{}, Interval{});
  EXPECT_NEAR(p[models::kWavelanIdle], (1.5 + 0.75) / kIdleExit, 1e-12);
  EXPECT_DOUBLE_EQ(p[models::kWavelanOff], 0.0);    // off's successor is sleep
  EXPECT_DOUBLE_EQ(p[models::kWavelanSleep], 0.0);  // sleep's successors aren't busy
}

TEST_F(NextOnWavelan, TimeBoundScalesBySojournCdf) {
  const double t = 0.1;
  const auto p = next_probabilities(model_, busy_, logic::up_to(t), Interval{});
  const double expected = (1.5 + 0.75) / kIdleExit * (1.0 - std::exp(-kIdleExit * t));
  EXPECT_NEAR(p[models::kWavelanIdle], expected, 1e-12);
}

TEST_F(NextOnWavelan, TimeWindowUsesBothEnds) {
  const double a = 0.05;
  const double b = 0.2;
  const auto p = next_probabilities(model_, busy_, Interval(a, b), Interval{});
  const double expected =
      (1.5 + 0.75) / kIdleExit * (std::exp(-kIdleExit * a) - std::exp(-kIdleExit * b));
  EXPECT_NEAR(p[models::kWavelanIdle], expected, 1e-12);
}

TEST_F(NextOnWavelan, RewardBoundTruncatesTheWindow) {
  // From idle (rho = 1319), jumping to receive pays iota = 0.42545; the
  // reward bound [0, r] allows jump times x <= (r - iota)/rho.
  const double r = 100.0;
  const auto p = next_probabilities(model_, busy_, Interval{}, logic::up_to(r));
  const double x_receive = (r - 0.42545) / 1319.0;
  const double x_transmit = (r - 0.36195) / 1319.0;
  const double expected = 1.5 / kIdleExit * (1.0 - std::exp(-kIdleExit * x_receive)) +
                          0.75 / kIdleExit * (1.0 - std::exp(-kIdleExit * x_transmit));
  EXPECT_NEAR(p[models::kWavelanIdle], expected, 1e-12);
}

TEST_F(NextOnWavelan, UnsatisfiableRewardBoundGivesZero) {
  // The impulse alone (0.42545 / 0.36195) exceeds the bound.
  const auto p = next_probabilities(model_, busy_, Interval{}, logic::up_to(0.3));
  EXPECT_DOUBLE_EQ(p[models::kWavelanIdle], 0.0);
}

TEST_F(NextOnWavelan, ZeroRewardStateDependsOnlyOnImpulse) {
  // rho(off) = 0; jump off->sleep pays 0.02. Bound below that: impossible;
  // bound above: the time window is the whole time bound.
  std::vector<bool> sleep = model_.labels().states_with("sleep");
  const auto blocked = next_probabilities(model_, sleep, Interval{}, logic::up_to(0.01));
  EXPECT_DOUBLE_EQ(blocked[models::kWavelanOff], 0.0);
  const auto allowed = next_probabilities(model_, sleep, logic::up_to(5.0), logic::up_to(0.05));
  EXPECT_NEAR(allowed[models::kWavelanOff], 1.0 - std::exp(-0.1 * 5.0), 1e-12);
}

TEST_F(NextOnWavelan, AbsorbingStateHasNoNext) {
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  core::Labeling labels(2);
  labels.add(1, "goal");
  const core::Mrm model(core::Ctmc(rates.build(), std::move(labels)), {1.0, 1.0});
  const auto p =
      next_probabilities(model, model.labels().states_with("goal"), Interval{}, Interval{});
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST_F(NextOnWavelan, RewardLowerBoundDelaysTheWindow) {
  // J = [r1, ~]: need rho * x + iota >= r1, i.e. x >= (r1 - iota) / rho.
  const double r1 = 50.0;
  const auto p = next_probabilities(
      model_, busy_, Interval{}, Interval(r1, std::numeric_limits<double>::infinity()));
  const double x_receive = (r1 - 0.42545) / 1319.0;
  const double x_transmit = (r1 - 0.36195) / 1319.0;
  const double expected = 1.5 / kIdleExit * std::exp(-kIdleExit * x_receive) +
                          0.75 / kIdleExit * std::exp(-kIdleExit * x_transmit);
  EXPECT_NEAR(p[models::kWavelanIdle], expected, 1e-12);
}

TEST_F(NextOnWavelan, WindowHelperMatchesManualIntersection) {
  const auto window = next_time_window(model_, models::kWavelanIdle, models::kWavelanReceive,
                                       logic::up_to(0.1), logic::up_to(100.0));
  ASSERT_TRUE(window.has_value());
  EXPECT_DOUBLE_EQ(window->lower(), 0.0);
  EXPECT_NEAR(window->upper(), (100.0 - 0.42545) / 1319.0, 1e-12);

  EXPECT_FALSE(next_time_window(model_, models::kWavelanIdle, models::kWavelanReceive,
                                Interval(0.2, 0.3), logic::up_to(100.0))
                   .has_value());
}

TEST_F(NextOnWavelan, RejectsMaskSizeMismatch) {
  EXPECT_THROW(next_probabilities(model_, std::vector<bool>(3), Interval{}, Interval{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::checker

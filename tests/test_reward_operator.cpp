// The R-operator extension (expected-reward bounds in the logic):
// parsing, printing, and checking against the underlying measures.
#include <gtest/gtest.h>

#include <cmath>

#include "checker/absorption.hpp"
#include "checker/performability.hpp"
#include "checker/sat.hpp"
#include "logic/parser.hpp"
#include "logic/printer.hpp"
#include "models/mm1k.hpp"
#include "models/tmr.hpp"
#include "models/wavelan.hpp"

namespace csrlmrm {
namespace {

using logic::FormulaKind;
using logic::RewardQuery;

TEST(RewardOperator, ParsesCumulativeQuery) {
  const auto f = logic::parse_formula("R(<= 25)[C[0,10]]");
  ASSERT_EQ(f->kind, FormulaKind::kExpectedReward);
  const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*f);
  EXPECT_EQ(node.query, RewardQuery::kCumulative);
  EXPECT_DOUBLE_EQ(node.bound, 25.0);
  EXPECT_DOUBLE_EQ(node.time_horizon, 10.0);
}

TEST(RewardOperator, ParsesReachabilityQuery) {
  const auto f = logic::parse_formula("R(<100)[F failed]");
  const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*f);
  EXPECT_EQ(node.query, RewardQuery::kReachability);
  EXPECT_EQ(node.operand->kind, FormulaKind::kAtomic);
}

TEST(RewardOperator, ParsesLongRunQuery) {
  const auto f = logic::parse_formula("R(>=3.2)[S]");
  const auto& node = static_cast<const logic::ExpectedRewardFormula&>(*f);
  EXPECT_EQ(node.query, RewardQuery::kLongRun);
  EXPECT_DOUBLE_EQ(node.bound, 3.2);
}

TEST(RewardOperator, ThresholdMayExceedOne) {
  // Unlike P/S operators, reward thresholds are unbounded.
  EXPECT_NO_THROW(logic::parse_formula("R(<1000)[S]"));
  EXPECT_THROW(logic::parse_formula("P(<1000)[a U b]"), logic::ParseError);
}

TEST(RewardOperator, RejectsMalformedQueries) {
  EXPECT_THROW(logic::parse_formula("R(<5)[C]"), logic::ParseError);       // missing horizon
  EXPECT_THROW(logic::parse_formula("R(<5)[C[1,2]]"), logic::ParseError);  // not [0,t]
  EXPECT_THROW(logic::parse_formula("R(<5)[G a]"), logic::ParseError);     // unknown query
  EXPECT_THROW(logic::parse_formula("R(<5) a"), logic::ParseError);        // missing [...]
}

TEST(RewardOperator, PrintsAndReparses) {
  for (const char* text :
       {"R(<= 25) [C[0,10]]", "R(< 100) [F failed]", "R(>= 3.2) [S]",
        "R(> 0.5) [F (a || b)]"}) {
    const auto f = logic::parse_formula(text);
    EXPECT_EQ(logic::to_string(f), text);
  }
}

TEST(RewardOperator, RIsStillAnOrdinaryAtomElsewhere) {
  const auto f = logic::parse_formula("R || busy");
  ASSERT_EQ(f->kind, FormulaKind::kOr);
}

TEST(RewardOperator, CumulativeCheckMatchesMeasure) {
  const core::Mrm model = models::make_mm1k({4, 0.7, 1.0, 1.0, 5.0, 2.0});
  checker::ModelChecker checker(model);
  const double expected = checker::expected_accumulated_reward(model, 0, 5.0);
  const auto low = logic::parse_formula("R(<=" + std::to_string(expected + 0.01) + ")[C[0,5]]");
  const auto high = logic::parse_formula("R(<=" + std::to_string(expected - 0.01) + ")[C[0,5]]");
  EXPECT_TRUE(checker.satisfies(0, low));
  EXPECT_FALSE(checker.satisfies(0, high));
  const auto values = checker.expected_rewards(low);
  EXPECT_NEAR(values[0], expected, 1e-12);
}

TEST(RewardOperator, ReachabilityCheckHandlesInfinity) {
  // From a state that may escape the target, the expected reward is
  // +infinity and no finite upper bound is satisfied, while ">=" bounds are.
  core::RateMatrixBuilder rates(3);
  rates.add(0, 1, 1.0);
  rates.add(0, 2, 1.0);
  core::Labeling labels(3);
  labels.add(1, "goal");
  const core::Mrm model(core::Ctmc(rates.build(), std::move(labels)),
                        std::vector<double>(3, 1.0));
  checker::ModelChecker checker(model);
  EXPECT_FALSE(checker.satisfies(0, logic::parse_formula("R(<1000000)[F goal]")));
  EXPECT_TRUE(checker.satisfies(0, logic::parse_formula("R(>1000000)[F goal]")));
  EXPECT_TRUE(checker.satisfies(1, logic::parse_formula("R(<=0)[F goal]")));
}

TEST(RewardOperator, LongRunCheckOnTmr) {
  // The TMR's long-run rate sits just above rho(allUp) = 8 (mostly all-up,
  // occasionally degraded, tiny repair-impulse flux).
  const core::Mrm model = models::make_tmr(models::TmrConfig{});
  checker::ModelChecker checker(model);
  EXPECT_TRUE(checker.satisfies(0, logic::parse_formula("R(>8)[S]")));
  EXPECT_TRUE(checker.satisfies(0, logic::parse_formula("R(<8.2)[S]")));
}

TEST(RewardOperator, NestsInsideBooleanFormulas) {
  const core::Mrm model = models::make_wavelan();
  checker::ModelChecker checker(model);
  // Long-run power above 100 mW and eventually-busy almost surely.
  const auto f = logic::parse_formula("R(>100)[S] && P(>=0.99)[TT U busy]");
  EXPECT_TRUE(checker.satisfies(models::kWavelanIdle, f));
}

TEST(RewardOperator, ExpectedRewardsRejectsWrongNode) {
  const core::Mrm model = models::make_wavelan();
  checker::ModelChecker checker(model);
  EXPECT_THROW(checker.expected_rewards(logic::parse_formula("busy")),
               std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm

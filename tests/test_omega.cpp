// The Omega recursion (Algorithm 4.8) against closed forms, symmetry
// properties, and the thesis's worked Example 4.4.
#include "numeric/omega.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace csrlmrm::numeric {
namespace {

TEST(Omega, EmptySumComparesZeroAgainstThreshold) {
  EXPECT_DOUBLE_EQ(omega(0.5, {1.0}, {0}), 1.0);
  EXPECT_DOUBLE_EQ(omega(-0.5, {1.0}, {0}), 0.0);
}

TEST(Omega, AllCoefficientsBelowThresholdGivesOne) {
  EXPECT_DOUBLE_EQ(omega(5.0, {4.0, 2.0, 0.0}, {3, 2, 1}), 1.0);
}

TEST(Omega, AllCoefficientsAboveThresholdGivesZero) {
  EXPECT_DOUBLE_EQ(omega(1.0, {4.0, 2.0}, {3, 2}), 0.0);
}

TEST(Omega, TotalOfAllSpacingsIsOne) {
  // sum of all n+1 spacings is identically 1, so Pr{sum <= r} is a step at 1.
  EXPECT_DOUBLE_EQ(omega(0.999, {1.0}, {7}), 0.0);
  EXPECT_DOUBLE_EQ(omega(1.0, {1.0}, {7}), 1.0);
}

TEST(Omega, SingleUniformIsLinear) {
  // a * Y1 with one interior point: Y1 ~ U(0,1), so Pr{a Y1 <= r} = r/a.
  const double a = 4.0;
  for (double r : {0.5, 1.0, 2.0, 3.5}) {
    EXPECT_NEAR(omega(r, {a, 0.0}, {1, 1}), r / a, 1e-12) << "r=" << r;
  }
}

TEST(Omega, SumOfTwoUniformsIsIrwinHall) {
  // c = {2,1,0}, k = {1,1,1}: G = 2 Y1 + Y2 = U_(1) + U_(2) = U1 + U2, whose
  // CDF is the Irwin-Hall distribution of order 2.
  EXPECT_NEAR(omega(0.5, {2.0, 1.0, 0.0}, {1, 1, 1}), 0.125, 1e-12);
  EXPECT_NEAR(omega(1.0, {2.0, 1.0, 0.0}, {1, 1, 1}), 0.5, 1e-12);
  EXPECT_NEAR(omega(1.5, {2.0, 1.0, 0.0}, {1, 1, 1}), 0.875, 1e-12);
}

TEST(Omega, ThesisExample44) {
  // r' = 1, c = <5,3,1,0>, k = <1,2,2,2> (Example 4.4); exact value 47/675,
  // cross-checked by Monte Carlo during development.
  EXPECT_NEAR(omega(1.0, {5.0, 3.0, 1.0, 0.0}, {1, 2, 2, 2}), 47.0 / 675.0, 1e-12);
}

TEST(Omega, CoefficientOrderDoesNotMatter) {
  const double a = omega(1.3, {5.0, 3.0, 1.0, 0.0}, {1, 2, 2, 2});
  const double b = omega(1.3, {0.0, 1.0, 3.0, 5.0}, {2, 2, 2, 1});
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(Omega, MonotoneInThreshold) {
  const std::vector<double> c{6.0, 3.5, 1.0, 0.0};
  const SpacingCounts k{2, 3, 1, 2};
  double prev = 0.0;
  for (double r = 0.0; r <= 6.5; r += 0.25) {
    const double value = omega(r, c, k);
    EXPECT_GE(value, prev - 1e-12) << "r=" << r;
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
    prev = value;
  }
}

TEST(Omega, AgreesWithMonteCarlo) {
  // Random-instance cross-check of the full recursion against simulation.
  const std::vector<double> c{4.0, 2.5, 1.0, 0.0};
  const SpacingCounts k{1, 2, 1, 2};  // 6 spacings from 5 points
  const double r = 1.8;

  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const int points = 5;
  long long hits = 0;
  const long long trials = 400000;
  for (long long trial = 0; trial < trials; ++trial) {
    double u[points];
    for (double& x : u) x = uniform(rng);
    std::sort(u, u + points);
    double y[points + 1];
    y[0] = u[0];
    for (int i = 1; i < points; ++i) y[i] = u[i] - u[i - 1];
    y[points] = 1.0 - u[points - 1];
    // coefficients laid out per counts: c0 x1, c1 x2, c2 x1, c3 x2
    const double g = 4.0 * y[0] + 2.5 * (y[1] + y[2]) + 1.0 * y[3] + 0.0 * (y[4] + y[5]);
    if (g <= r) ++hits;
  }
  const double estimate = static_cast<double>(hits) / static_cast<double>(trials);
  EXPECT_NEAR(omega(r, c, k), estimate, 5e-3);
}

TEST(OmegaEvaluator, RejectsDuplicateCoefficients) {
  EXPECT_THROW(OmegaEvaluator({1.0, 1.0}, 0.5), std::invalid_argument);
}

TEST(OmegaEvaluator, RejectsEmptyCoefficients) {
  EXPECT_THROW(OmegaEvaluator({}, 0.5), std::invalid_argument);
}

TEST(OmegaEvaluator, RejectsCountSizeMismatch) {
  OmegaEvaluator evaluator({1.0, 0.0}, 0.5);
  EXPECT_THROW(evaluator.evaluate({1}), std::invalid_argument);
}

TEST(OmegaEvaluator, MemoizationGrowsOnlyOnNewSubproblems) {
  OmegaEvaluator evaluator({3.0, 1.0, 0.0}, 1.5);
  evaluator.evaluate({2, 2, 2});
  const std::size_t after_first = evaluator.cache_size();
  EXPECT_GT(after_first, 0u);
  evaluator.evaluate({2, 2, 2});  // fully cached
  EXPECT_EQ(evaluator.cache_size(), after_first);
  evaluator.evaluate({3, 2, 2});  // superset: adds new lattice points
  EXPECT_GT(evaluator.cache_size(), after_first);
}

TEST(Omega, DeepCountsStayInUnitInterval) {
  // Numerical-stability spot check: only multiplications in [0,1] happen, so
  // a 300-residence query remains a probability.
  const double value = omega(0.7, {2.0, 1.0, 0.0}, {100, 100, 100});
  EXPECT_GE(value, 0.0);
  EXPECT_LE(value, 1.0);
}

}  // namespace
}  // namespace csrlmrm::numeric

// The Omega recursion (Algorithm 4.8) against closed forms, symmetry
// properties, and the thesis's worked Example 4.4.
#include "numeric/omega.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>

namespace csrlmrm::numeric {
namespace {

TEST(Omega, EmptySumComparesZeroAgainstThreshold) {
  EXPECT_DOUBLE_EQ(omega(0.5, {1.0}, {0}), 1.0);
  EXPECT_DOUBLE_EQ(omega(-0.5, {1.0}, {0}), 0.0);
}

TEST(Omega, AllCoefficientsBelowThresholdGivesOne) {
  EXPECT_DOUBLE_EQ(omega(5.0, {4.0, 2.0, 0.0}, {3, 2, 1}), 1.0);
}

TEST(Omega, AllCoefficientsAboveThresholdGivesZero) {
  EXPECT_DOUBLE_EQ(omega(1.0, {4.0, 2.0}, {3, 2}), 0.0);
}

TEST(Omega, TotalOfAllSpacingsIsOne) {
  // sum of all n+1 spacings is identically 1, so Pr{sum <= r} is a step at 1.
  EXPECT_DOUBLE_EQ(omega(0.999, {1.0}, {7}), 0.0);
  EXPECT_DOUBLE_EQ(omega(1.0, {1.0}, {7}), 1.0);
}

TEST(Omega, SingleUniformIsLinear) {
  // a * Y1 with one interior point: Y1 ~ U(0,1), so Pr{a Y1 <= r} = r/a.
  const double a = 4.0;
  for (double r : {0.5, 1.0, 2.0, 3.5}) {
    EXPECT_NEAR(omega(r, {a, 0.0}, {1, 1}), r / a, 1e-12) << "r=" << r;
  }
}

TEST(Omega, SumOfTwoUniformsIsIrwinHall) {
  // c = {2,1,0}, k = {1,1,1}: G = 2 Y1 + Y2 = U_(1) + U_(2) = U1 + U2, whose
  // CDF is the Irwin-Hall distribution of order 2.
  EXPECT_NEAR(omega(0.5, {2.0, 1.0, 0.0}, {1, 1, 1}), 0.125, 1e-12);
  EXPECT_NEAR(omega(1.0, {2.0, 1.0, 0.0}, {1, 1, 1}), 0.5, 1e-12);
  EXPECT_NEAR(omega(1.5, {2.0, 1.0, 0.0}, {1, 1, 1}), 0.875, 1e-12);
}

TEST(Omega, ThesisExample44) {
  // r' = 1, c = <5,3,1,0>, k = <1,2,2,2> (Example 4.4); exact value 47/675,
  // cross-checked by Monte Carlo during development.
  EXPECT_NEAR(omega(1.0, {5.0, 3.0, 1.0, 0.0}, {1, 2, 2, 2}), 47.0 / 675.0, 1e-12);
}

TEST(Omega, CoefficientOrderDoesNotMatter) {
  const double a = omega(1.3, {5.0, 3.0, 1.0, 0.0}, {1, 2, 2, 2});
  const double b = omega(1.3, {0.0, 1.0, 3.0, 5.0}, {2, 2, 2, 1});
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(Omega, MonotoneInThreshold) {
  const std::vector<double> c{6.0, 3.5, 1.0, 0.0};
  const SpacingCounts k{2, 3, 1, 2};
  double prev = 0.0;
  for (double r = 0.0; r <= 6.5; r += 0.25) {
    const double value = omega(r, c, k);
    EXPECT_GE(value, prev - 1e-12) << "r=" << r;
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
    prev = value;
  }
}

TEST(Omega, AgreesWithMonteCarlo) {
  // Random-instance cross-check of the full recursion against simulation.
  const std::vector<double> c{4.0, 2.5, 1.0, 0.0};
  const SpacingCounts k{1, 2, 1, 2};  // 6 spacings from 5 points
  const double r = 1.8;

  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const int points = 5;
  long long hits = 0;
  const long long trials = 400000;
  for (long long trial = 0; trial < trials; ++trial) {
    double u[points];
    for (double& x : u) x = uniform(rng);
    std::sort(u, u + points);
    double y[points + 1];
    y[0] = u[0];
    for (int i = 1; i < points; ++i) y[i] = u[i] - u[i - 1];
    y[points] = 1.0 - u[points - 1];
    // coefficients laid out per counts: c0 x1, c1 x2, c2 x1, c3 x2
    const double g = 4.0 * y[0] + 2.5 * (y[1] + y[2]) + 1.0 * y[3] + 0.0 * (y[4] + y[5]);
    if (g <= r) ++hits;
  }
  const double estimate = static_cast<double>(hits) / static_cast<double>(trials);
  EXPECT_NEAR(omega(r, c, k), estimate, 5e-3);
}

TEST(OmegaEvaluator, RejectsDuplicateCoefficients) {
  EXPECT_THROW(OmegaEvaluator({1.0, 1.0}, 0.5), std::invalid_argument);
}

TEST(OmegaEvaluator, RejectsEmptyCoefficients) {
  EXPECT_THROW(OmegaEvaluator({}, 0.5), std::invalid_argument);
}

TEST(OmegaEvaluator, RejectsCountSizeMismatch) {
  OmegaEvaluator evaluator({1.0, 0.0}, 0.5);
  EXPECT_THROW(evaluator.evaluate({1}), std::invalid_argument);
}

namespace {
// The pre-wavefront memoized recursion, kept as the bitwise ground truth for
// the DP rewrite: same pivot choice (first nonzero class on each side), same
// combination expression, so the wavefront evaluator must agree to the last
// bit on every instance.
class ReferenceOmega {
 public:
  ReferenceOmega(std::vector<double> c, double r) : c_(std::move(c)), r_(r) {
    greater_.resize(c_.size());
    for (std::size_t l = 0; l < c_.size(); ++l) greater_[l] = c_[l] > r_;
  }

  double evaluate(SpacingCounts counts) {
    const bool all_zero =
        std::all_of(counts.begin(), counts.end(), [](auto v) { return v == 0; });
    if (all_zero) return r_ >= 0.0 ? 1.0 : 0.0;
    return evaluate_recursive(counts);
  }

 private:
  double evaluate_recursive(SpacingCounts& counts) {
    std::size_t total_greater = 0;
    std::size_t total_lesser = 0;
    std::size_t pick_greater = c_.size();
    std::size_t pick_lesser = c_.size();
    for (std::size_t l = 0; l < c_.size(); ++l) {
      if (counts[l] == 0) continue;
      if (greater_[l]) {
        total_greater += counts[l];
        if (pick_greater == c_.size()) pick_greater = l;
      } else {
        total_lesser += counts[l];
        if (pick_lesser == c_.size()) pick_lesser = l;
      }
    }
    if (total_greater == 0) return 1.0;
    if (total_lesser == 0) return 0.0;
    if (const auto it = memo_.find(counts); it != memo_.end()) return it->second;
    const double ci = c_[pick_greater];
    const double cj = c_[pick_lesser];
    const double denom = ci - cj;
    --counts[pick_lesser];
    const double without_lesser = evaluate_recursive(counts);
    ++counts[pick_lesser];
    --counts[pick_greater];
    const double without_greater = evaluate_recursive(counts);
    ++counts[pick_greater];
    const double value =
        ((ci - r_) / denom) * without_lesser + ((r_ - cj) / denom) * without_greater;
    memo_.emplace(counts, value);
    return value;
  }

  std::vector<double> c_;
  double r_;
  std::vector<bool> greater_;
  std::map<SpacingCounts, double> memo_;
};
}  // namespace

TEST(OmegaEvaluator, WavefrontMatchesMemoizedRecursionBitwise) {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> num_classes(1, 5);
  std::uniform_int_distribution<std::uint32_t> count_dist(0, 6);
  std::uniform_real_distribution<double> coeff_dist(0.0, 10.0);
  std::uniform_real_distribution<double> threshold_dist(-1.0, 11.0);
  for (int trial = 0; trial < 200; ++trial) {
    const int classes = num_classes(rng);
    std::vector<double> c;
    while (static_cast<int>(c.size()) < classes) {
      const double candidate = coeff_dist(rng);
      if (std::find(c.begin(), c.end(), candidate) == c.end()) c.push_back(candidate);
    }
    SpacingCounts counts(c.size());
    for (auto& v : counts) v = count_dist(rng);
    const double r = threshold_dist(rng);
    OmegaEvaluator evaluator(c, r);
    ReferenceOmega reference(c, r);
    EXPECT_EQ(evaluator.evaluate(counts), reference.evaluate(counts))
        << "trial=" << trial << " r=" << r;
  }
}

TEST(Omega, DeepCountsStayInUnitInterval) {
  // Numerical-stability spot check: only multiplications in [0,1] happen, so
  // a 300-residence query remains a probability.
  const double value = omega(0.7, {2.0, 1.0, 0.0}, {100, 100, 100});
  EXPECT_GE(value, 0.0);
  EXPECT_LE(value, 1.0);
}

}  // namespace
}  // namespace csrlmrm::numeric

#include "numeric/poisson.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace csrlmrm::numeric {
namespace {

TEST(Poisson, ZeroMeanIsPointMassAtZero) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(3, 0.0), 0.0);
}

TEST(Poisson, MatchesThesisRecursion) {
  // P_0 = e^{-m}, P_i = (m/i) P_{i-1} (section 4.6.2).
  const double mean = 3.7;
  double recursive = std::exp(-mean);
  for (std::size_t i = 0; i <= 25; ++i) {
    EXPECT_NEAR(poisson_pmf(i, mean), recursive, 1e-14) << "at i=" << i;
    recursive *= mean / static_cast<double>(i + 1);
  }
}

TEST(Poisson, PmfSumsToOne) {
  const double mean = 12.0;
  double total = 0.0;
  for (std::size_t i = 0; i <= 200; ++i) total += poisson_pmf(i, mean);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Poisson, StableForHugeMeans) {
  // The naive recursion underflows at e^{-2000}; the log-domain form must
  // still give usable masses near the mode.
  const double mean = 2000.0;
  const double at_mode = poisson_pmf(2000, mean);
  EXPECT_GT(at_mode, 0.0);
  EXPECT_NEAR(at_mode, 1.0 / std::sqrt(2.0 * 3.14159265358979 * mean), 1e-4);
}

TEST(Poisson, RejectsInvalidMean) {
  EXPECT_THROW(poisson_pmf(0, -1.0), std::invalid_argument);
  EXPECT_THROW(poisson_pmf(0, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(Poisson, CdfIsMonotone) {
  const double mean = 5.0;
  double prev = 0.0;
  for (std::size_t i = 0; i <= 30; ++i) {
    const double c = poisson_cdf(i, mean);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-10);
}

TEST(Poisson, SequenceMatchesPointwisePmf) {
  const auto seq = poisson_pmf_sequence(20, 4.2);
  ASSERT_EQ(seq.size(), 21u);
  for (std::size_t i = 0; i <= 20; ++i) EXPECT_DOUBLE_EQ(seq[i], poisson_pmf(i, 4.2));
}

TEST(Poisson, TruncationPointCapturesMass) {
  const double mean = 8.0;
  const double epsilon = 1e-10;
  const std::size_t n = poisson_truncation_point(mean, epsilon);
  EXPECT_GE(poisson_cdf(n, mean), 1.0 - epsilon);
  if (n > 0) {
    EXPECT_LT(poisson_cdf(n - 1, mean), 1.0 - epsilon);
  }
}

TEST(Poisson, TruncationPointRejectsBadEpsilon) {
  EXPECT_THROW(poisson_truncation_point(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(poisson_truncation_point(1.0, 1.0), std::invalid_argument);
}

TEST(PoissonCdfTable, MatchesDirectCdf) {
  PoissonCdfTable table(6.5);
  // Query out of order to exercise on-demand extension.
  EXPECT_NEAR(table.cdf(10), poisson_cdf(10, 6.5), 1e-14);
  EXPECT_NEAR(table.cdf(3), poisson_cdf(3, 6.5), 1e-14);
  EXPECT_NEAR(table.cdf(25), poisson_cdf(25, 6.5), 1e-14);
}

TEST(PoissonCdfTable, TailComplementsCdf) {
  PoissonCdfTable table(4.0);
  EXPECT_DOUBLE_EQ(table.tail(0), 1.0);
  EXPECT_NEAR(table.tail(5), 1.0 - poisson_cdf(4, 4.0), 1e-14);
  EXPECT_GE(table.tail(100), 0.0);
}

}  // namespace
}  // namespace csrlmrm::numeric

// The make_absorbing transformation (Definition 4.1), checked on the
// WaveLAN model per Example 4.1 (M[busy]).
#include "core/transform.hpp"

#include <gtest/gtest.h>

#include "models/wavelan.hpp"

namespace csrlmrm::core {
namespace {

TEST(MakeAbsorbing, BusyStatesLoseDynamicsAndRewards) {
  const Mrm model = models::make_wavelan();
  const std::vector<bool> busy = model.labels().states_with("busy");
  const Mrm transformed = make_absorbing(model, busy);

  // Example 4.1: receive and transmit become absorbing with zero rewards.
  for (const StateIndex s : {models::kWavelanReceive, models::kWavelanTransmit}) {
    EXPECT_TRUE(transformed.rates().is_absorbing(s));
    EXPECT_DOUBLE_EQ(transformed.state_reward(s), 0.0);
  }
}

TEST(MakeAbsorbing, NonAbsorbedStatesKeepEverything) {
  const Mrm model = models::make_wavelan();
  const Mrm transformed = make_absorbing(model, model.labels().states_with("busy"));
  EXPECT_DOUBLE_EQ(transformed.rates().rate(models::kWavelanIdle, models::kWavelanReceive),
                   model.rates().rate(models::kWavelanIdle, models::kWavelanReceive));
  EXPECT_DOUBLE_EQ(transformed.state_reward(models::kWavelanIdle), 1319.0);
  EXPECT_DOUBLE_EQ(transformed.rates().exit_rate(models::kWavelanIdle), 14.25);
}

TEST(MakeAbsorbing, ImpulsesIntoAbsorbedStatesSurvive) {
  // The jump that first reaches the absorbing set still pays its impulse.
  const Mrm model = models::make_wavelan();
  const Mrm transformed = make_absorbing(model, model.labels().states_with("busy"));
  EXPECT_NEAR(transformed.impulse_reward(models::kWavelanIdle, models::kWavelanReceive),
              0.42545, 1e-12);
}

TEST(MakeAbsorbing, OutgoingImpulsesOfAbsorbedStatesVanish) {
  const Mrm model = models::make_wavelan();
  std::vector<bool> absorb(5, false);
  absorb[models::kWavelanIdle] = true;
  const Mrm transformed = make_absorbing(model, absorb);
  EXPECT_DOUBLE_EQ(
      transformed.impulse_reward(models::kWavelanIdle, models::kWavelanReceive), 0.0);
  EXPECT_DOUBLE_EQ(transformed.rates().exit_rate(models::kWavelanIdle), 0.0);
}

TEST(MakeAbsorbing, LabelingIsUnchanged) {
  const Mrm model = models::make_wavelan();
  const Mrm transformed = make_absorbing(model, model.labels().states_with("busy"));
  EXPECT_TRUE(transformed.labels().has(models::kWavelanReceive, "busy"));
  EXPECT_TRUE(transformed.labels().has(models::kWavelanReceive, "receive"));
}

TEST(MakeAbsorbing, EmptyMaskIsIdentity) {
  const Mrm model = models::make_wavelan();
  const Mrm transformed = make_absorbing(model, std::vector<bool>(5, false));
  for (StateIndex s = 0; s < 5; ++s) {
    EXPECT_DOUBLE_EQ(transformed.state_reward(s), model.state_reward(s));
    EXPECT_DOUBLE_EQ(transformed.rates().exit_rate(s), model.rates().exit_rate(s));
  }
}

TEST(MakeAbsorbing, SequentialAbsorptionEqualsUnion) {
  // M[Phi][Psi] = M[Phi v Psi] (remark after Definition 4.1).
  const Mrm model = models::make_wavelan();
  const auto busy = model.labels().states_with("busy");
  const auto sleep = model.labels().states_with("sleep");
  std::vector<bool> both(5, false);
  for (StateIndex s = 0; s < 5; ++s) both[s] = busy[s] || sleep[s];

  const Mrm sequential = make_absorbing(make_absorbing(model, busy), sleep);
  const Mrm direct = make_absorbing(model, both);
  for (StateIndex s = 0; s < 5; ++s) {
    EXPECT_DOUBLE_EQ(sequential.state_reward(s), direct.state_reward(s));
    EXPECT_DOUBLE_EQ(sequential.rates().exit_rate(s), direct.rates().exit_rate(s));
    for (StateIndex s2 = 0; s2 < 5; ++s2) {
      EXPECT_DOUBLE_EQ(sequential.rates().rate(s, s2), direct.rates().rate(s, s2));
      EXPECT_DOUBLE_EQ(sequential.impulse_reward(s, s2), direct.impulse_reward(s, s2));
    }
  }
}

TEST(MakeAbsorbing, RejectsMaskSizeMismatch) {
  const Mrm model = models::make_wavelan();
  EXPECT_THROW(make_absorbing(model, std::vector<bool>(4, false)), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::core

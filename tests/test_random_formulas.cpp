// Property tests driven by randomly generated CSRL formulas: parser/printer
// round trips and checker consistency laws on random models.
#include <gtest/gtest.h>

#include "checker/sat.hpp"
#include "logic/parser.hpp"
#include "logic/printer.hpp"
#include "models/random_formula.hpp"
#include "models/random_mrm.hpp"

namespace csrlmrm {
namespace {

models::RandomMrmConfig calm_model() {
  models::RandomMrmConfig config;
  config.num_states = 5;
  config.max_rate = 0.8;  // keeps Lambda * t small for until formulas
  return config;
}

class RandomFormulaSuite : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RandomFormulaSuite, PrintedFormulaReparsesToSameSatSet) {
  const auto formula = models::make_random_formula(GetParam());
  const auto reparsed = logic::parse_formula(logic::to_string(formula));

  const core::Mrm model = models::make_random_mrm(GetParam() * 7 + 1, calm_model());
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-9;
  checker::ModelChecker checker(model, options);
  EXPECT_EQ(checker.satisfaction_set(formula), checker.satisfaction_set(reparsed))
      << logic::to_string(formula);
}

TEST_P(RandomFormulaSuite, NegationComplementsTheSatSet) {
  const auto formula = models::make_random_formula(GetParam());
  const auto negated = logic::make_not(formula);
  const core::Mrm model = models::make_random_mrm(GetParam() * 13 + 3, calm_model());
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-9;
  checker::ModelChecker checker(model, options);
  const auto& sat = checker.satisfaction_set(formula);
  const auto& sat_negated = checker.satisfaction_set(negated);
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    EXPECT_NE(sat[s], sat_negated[s]) << logic::to_string(formula) << " state " << s;
  }
}

TEST_P(RandomFormulaSuite, DisjunctionIsUnionOfSatSets) {
  const auto lhs = models::make_random_formula(GetParam());
  const auto rhs = models::make_random_formula(GetParam() + 1000);
  const auto disjunction = logic::make_or(lhs, rhs);
  const core::Mrm model = models::make_random_mrm(GetParam() * 31 + 5, calm_model());
  checker::CheckerOptions options;
  options.uniformization.truncation_probability = 1e-9;
  checker::ModelChecker checker(model, options);
  const auto sat_lhs = checker.satisfaction_set(lhs);
  const auto sat_rhs = checker.satisfaction_set(rhs);
  const auto& sat = checker.satisfaction_set(disjunction);
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    EXPECT_EQ(sat[s], sat_lhs[s] || sat_rhs[s]) << "state " << s;
  }
}

TEST_P(RandomFormulaSuite, GenerationIsDeterministic) {
  const auto a = models::make_random_formula(GetParam());
  const auto b = models::make_random_formula(GetParam());
  EXPECT_EQ(logic::to_string(a), logic::to_string(b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFormulaSuite, ::testing::Range(1u, 26u));

TEST(RandomFormulas, ProduceDiverseOperators) {
  // Over a seed range, all operator kinds should appear at the top level of
  // the printed text somewhere.
  bool saw_until = false;
  bool saw_next = false;
  bool saw_steady = false;
  for (std::uint32_t seed = 1; seed <= 200; ++seed) {
    models::RandomFormulaConfig config;
    config.probabilistic_probability = 0.6;
    const auto text = logic::to_string(models::make_random_formula(seed, config));
    saw_until = saw_until || text.find(" U") != std::string::npos;
    saw_next = saw_next || text.find("[X") != std::string::npos;
    saw_steady = saw_steady || text.find("S(") != std::string::npos;
  }
  EXPECT_TRUE(saw_until);
  EXPECT_TRUE(saw_next);
  EXPECT_TRUE(saw_steady);
}

}  // namespace
}  // namespace csrlmrm

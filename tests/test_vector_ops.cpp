#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace csrlmrm::linalg {
namespace {

TEST(VectorOps, DotOfOrthogonalVectorsIsZero) {
  EXPECT_DOUBLE_EQ(dot({1.0, 0.0}, {0.0, 1.0}), 0.0);
}

TEST(VectorOps, DotComputesInnerProduct) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
}

TEST(VectorOps, DotRejectsSizeMismatch) {
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(VectorOps, AxpyAccumulatesScaledVector) {
  std::vector<double> y{1.0, 1.0};
  axpy(2.0, {3.0, 4.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
}

TEST(VectorOps, AxpyRejectsSizeMismatch) {
  std::vector<double> y{1.0};
  EXPECT_THROW(axpy(1.0, {1.0, 2.0}, y), std::invalid_argument);
}

TEST(VectorOps, LinfNormOfEmptyVectorIsZero) { EXPECT_DOUBLE_EQ(linf_norm({}), 0.0); }

TEST(VectorOps, LinfNormUsesAbsoluteValues) {
  EXPECT_DOUBLE_EQ(linf_norm({1.0, -5.0, 3.0}), 5.0);
}

TEST(VectorOps, LinfDistanceFindsLargestGap) {
  EXPECT_DOUBLE_EQ(linf_distance({1.0, 2.0}, {1.5, 0.0}), 2.0);
}

TEST(VectorOps, SumAddsEntries) { EXPECT_DOUBLE_EQ(sum({0.25, 0.5, 0.125}), 0.875); }

TEST(VectorOps, NormalizeProducesDistribution) {
  std::vector<double> v{1.0, 3.0};
  normalize_to_distribution(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
  EXPECT_TRUE(is_distribution(v));
}

TEST(VectorOps, NormalizeRejectsZeroVector) {
  std::vector<double> v{0.0, 0.0};
  EXPECT_THROW(normalize_to_distribution(v), std::domain_error);
}

TEST(VectorOps, IsDistributionRejectsNegativeEntries) {
  EXPECT_FALSE(is_distribution({-0.5, 1.5}));
}

TEST(VectorOps, IsDistributionRejectsWrongSum) { EXPECT_FALSE(is_distribution({0.4, 0.4})); }

TEST(VectorOps, IsDistributionAcceptsWithinTolerance) {
  EXPECT_TRUE(is_distribution({0.5, 0.5 + 1e-12}));
}

}  // namespace
}  // namespace csrlmrm::linalg

// Tests for the v2 flow-aware layer of csrlmrm-lint: the per-file IR pass
// pipeline (classes, annotations, methods, lock scopes, eviction), companion
// headers, the incremental cache, parallel-scan determinism, the --fix
// engine, and the SARIF emitter.
//
// The LintMutation suite is the PR's regression armor: it copies *real*
// sources from the live tree into a temp directory, re-introduces the exact
// historical bug shapes (the PR 8 TransformCache reference return, a stripped
// lock_guard in the daemon service, a stripped MSG_NOSIGNAL in the server)
// and asserts the new rules catch each one while the pristine copies stay
// clean — so the committed tree exiting 0 is a real verdict, not a tautology.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "cache.hpp"
#include "context.hpp"
#include "driver.hpp"
#include "fix.hpp"
#include "ir.hpp"
#include "lexer.hpp"
#include "obs/json.hpp"
#include "sarif.hpp"

namespace csrlmrm::lint {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "unreadable: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void write_file(const std::string& path, const std::string& text) {
  fs::create_directories(fs::path(path).parent_path());
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good()) << "unwritable: " << path;
  out << text;
}

/// Replaces every occurrence of `from` in `text`; returns the count so tests
/// can assert the mutation target still exists in the live source.
std::size_t replace_all(std::string& text, const std::string& from, const std::string& to) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
    ++count;
  }
  return count;
}

/// A unique scratch directory mirroring the repo layout, so copied sources
/// keep their src/<subsystem>/ classification and sibling-header pickup.
struct TempTree {
  fs::path root;

  TempTree() {
    static int counter = 0;
#ifndef _WIN32
    const int pid = ::getpid();
#else
    const int pid = 0;
#endif
    root = fs::temp_directory_path() /
           ("csrlmrm_lint_v2_" + std::to_string(pid) + "_" + std::to_string(counter++));
    fs::create_directories(root);
  }
  ~TempTree() {
    std::error_code ignored;
    fs::remove_all(root, ignored);
  }

  std::string path(const std::string& relative) const { return (root / relative).string(); }

  /// Copies `relative` from the live source tree, preserving its layout.
  std::string copy_source(const std::string& relative) {
    const std::string text = read_file(std::string(CSRLMRM_SOURCE_DIR) + "/" + relative);
    const std::string destination = path(relative);
    write_file(destination, text);
    return destination;
  }
};

LintOptions only(const std::string& rule) {
  LintOptions options;
  options.rule_filter = {rule};
  return options;
}

// ---------------------------------------------------------------------------
// IR pass pipeline.

TEST(LintIr, ClassIndexSurvivesInlineMethodBodies) {
  // The member declarations come *after* two inline bodies — the classes pass
  // must not swallow them into the method signatures.
  const FileContext ctx(lex("src/core/cache.hpp",
                            "#pragma once\n"
                            "#include <map>\n"
                            "#include <mutex>\n"
                            "class Cache {\n"
                            " public:\n"
                            "  const int& lookup(int key) { return entries_.at(key); }\n"
                            "  void evict_oldest() { entries_.erase(entries_.begin()); }\n"
                            " private:\n"
                            "  mutable std::mutex mutex_;\n"
                            "  std::map<int, int> entries_;  // lint:guarded_by(mutex_)\n"
                            "  std::size_t hits_ = 0;\n"
                            "};\n"));
  const FileIr& ir = ctx.ir();

  EXPECT_EQ(ir.container_members.count("entries_"), 1u);
  ASSERT_EQ(ir.guarded_members.count("entries_"), 1u);
  EXPECT_EQ(ir.guarded_members.at("entries_"), "mutex_");
  EXPECT_EQ(ir.guarded_members.count("hits_"), 0u);
  EXPECT_EQ(ir.eviction_classes.count("Cache"), 1u);

  bool saw_lookup = false;
  bool saw_evict = false;
  for (const MethodIr& m : ir.methods) {
    if (m.name == "lookup") {
      saw_lookup = true;
      EXPECT_EQ(m.class_name, "Cache");
      EXPECT_TRUE(m.returns_ref);
      EXPECT_FALSE(m.returns_ptr);
    }
    if (m.name == "evict_oldest") {
      saw_evict = true;
      EXPECT_FALSE(m.returns_ref);
    }
  }
  EXPECT_TRUE(saw_lookup);
  EXPECT_TRUE(saw_evict);
}

TEST(LintIr, OutOfClassDefinitionsAndLockScopes) {
  const FileContext ctx(lex("src/daemon/counter.cpp",
                            "#include <mutex>\n"
                            "class Counter {\n"
                            " public:\n"
                            "  void bump();\n"
                            "  unsigned long value() const;\n"
                            " private:\n"
                            "  mutable std::mutex mutex_;\n"
                            "  unsigned long count_ = 0;  // lint:guarded_by(mutex_)\n"
                            "};\n"
                            "void Counter::bump() {\n"
                            "  const std::lock_guard<std::mutex> lock(mutex_);\n"
                            "  ++count_;\n"
                            "}\n"
                            "unsigned long Counter::value() const { return count_; }\n"));
  const FileIr& ir = ctx.ir();

  bool saw_bump = false;
  for (const MethodIr& m : ir.methods) {
    if (m.name == "bump") {
      saw_bump = true;
      EXPECT_EQ(m.class_name, "Counter");
    }
  }
  EXPECT_TRUE(saw_bump);

  ASSERT_EQ(ir.lock_scopes.size(), 1u);
  ASSERT_EQ(ir.lock_scopes[0].mutexes.size(), 1u);
  EXPECT_EQ(ir.lock_scopes[0].mutexes[0], "mutex_");

  // Occurrences of count_: declaration, under the guard in bump(), bare in
  // value(). Only the second is covered by the lock scope.
  std::vector<std::size_t> count_tokens;
  for (std::size_t i = 0; i < ctx.tokens().size(); ++i) {
    if (ctx.text(ctx.tokens()[i]) == "count_") count_tokens.push_back(i);
  }
  ASSERT_EQ(count_tokens.size(), 3u);
  EXPECT_FALSE(ir.covered_by_lock(count_tokens[0], "mutex_"));
  EXPECT_TRUE(ir.covered_by_lock(count_tokens[1], "mutex_"));
  EXPECT_FALSE(ir.covered_by_lock(count_tokens[2], "mutex_"));
}

TEST(LintIr, NetworkedGateNeedsSocketHeader) {
  EXPECT_TRUE(FileContext(lex("src/daemon/a.cpp", "#include <sys/socket.h>\n")).ir().networked);
  EXPECT_FALSE(FileContext(lex("src/daemon/a.cpp", "#include <vector>\n")).ir().networked);
}

TEST(LintIr, CompanionHeaderFeedsGuardAnnotations) {
  // The annotation lives in the header; the racy access lives in the .cpp.
  // Scanned standalone the .cpp knows nothing about items_ — with the
  // companion the lock-hygiene rule must fire.
  const std::string header =
      "#pragma once\n"
      "#include <deque>\n"
      "#include <mutex>\n"
      "class Queue {\n"
      " public:\n"
      "  void push(int v);\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  std::deque<int> items_;  // lint:guarded_by(mutex_)\n"
      "};\n";
  const std::string source =
      "#include \"queue.hpp\"\n"
      "void Queue::push(int v) { items_.push_back(v); }\n";

  const LintReport with_header = lint_source_with_companion(
      "src/daemon/queue.cpp", source, "src/daemon/queue.hpp", header, only("lock-hygiene"));
  ASSERT_EQ(with_header.diagnostics.size(), 1u);
  EXPECT_EQ(with_header.diagnostics[0].rule, "lock-hygiene");
  EXPECT_EQ(with_header.diagnostics[0].line, 2u);

  EXPECT_TRUE(lint_source("src/daemon/queue.cpp", source, only("lock-hygiene"))
                  .diagnostics.empty());
}

// ---------------------------------------------------------------------------
// Mutation regression armor over real sources.

#if defined(CSRLMRM_SOURCE_DIR)

TEST(LintMutation, TransformCacheReferenceReturnIsCaught) {
  TempTree tree;
  const std::string cpp = tree.copy_source("src/core/transform.cpp");
  tree.copy_source("src/core/transform.hpp");

  const LintOptions options = only("dangling-cache-reference");
  EXPECT_TRUE(lint_paths({cpp}, options).clean()) << "pristine copy must be clean";

  // Re-introduce the PR 8 bug: absorbing() returning a reference into the
  // LRU-evicted entries_ map instead of shared ownership.
  std::string text = read_file(cpp);
  ASSERT_EQ(replace_all(text, "std::shared_ptr<const Mrm> TransformCache::absorbing",
                        "const Mrm& TransformCache::absorbing"),
            1u);
  ASSERT_EQ(replace_all(text, "return found->second.model;", "return *found->second.model;"),
            1u);
  ASSERT_EQ(replace_all(text, "return built;", "return *built;"), 1u);
  write_file(cpp, text);

  const LintReport mutated = lint_paths({cpp}, options);
  ASSERT_FALSE(mutated.diagnostics.empty());
  for (const Diagnostic& d : mutated.diagnostics) {
    EXPECT_EQ(d.rule, "dangling-cache-reference");
  }
}

TEST(LintMutation, ServiceLockGuardStripIsCaught) {
  TempTree tree;
  const std::string cpp = tree.copy_source("src/daemon/service.cpp");
  tree.copy_source("src/daemon/service.hpp");

  const LintOptions options = only("lock-hygiene");
  EXPECT_TRUE(lint_paths({cpp}, options).clean()) << "pristine copy must be clean";

  // Strip every lock_guard: the queue_/in_flight_/stopping_ accesses their
  // scopes covered are now bare, and the guarded_by annotations live in the
  // companion service.hpp.
  std::string text = read_file(cpp);
  ASSERT_GE(replace_all(text, "const std::lock_guard<std::mutex> lock(mutex_);", ""), 1u);
  write_file(cpp, text);

  const LintReport mutated = lint_paths({cpp}, options);
  ASSERT_FALSE(mutated.diagnostics.empty());
  for (const Diagnostic& d : mutated.diagnostics) {
    EXPECT_EQ(d.rule, "lock-hygiene");
  }
}

TEST(LintMutation, ServerNosignalStripIsCaught) {
  TempTree tree;
  const std::string cpp = tree.copy_source("src/daemon/server.cpp");
  tree.copy_source("src/daemon/server.hpp");

  const LintOptions options = only("syscall-hygiene");
  EXPECT_TRUE(lint_paths({cpp}, options).clean()) << "pristine copy must be clean";

  std::string text = read_file(cpp);
  ASSERT_GE(replace_all(text, "MSG_NOSIGNAL", "0"), 1u);
  write_file(cpp, text);

  const LintReport mutated = lint_paths({cpp}, options);
  ASSERT_FALSE(mutated.diagnostics.empty());
  for (const Diagnostic& d : mutated.diagnostics) {
    EXPECT_EQ(d.rule, "syscall-hygiene");
  }
}

#endif  // CSRLMRM_SOURCE_DIR

// ---------------------------------------------------------------------------
// Incremental cache.

constexpr const char* kEndlSnippet =
    "#include <iostream>\n"
    "void noisy() { std::cout << std::endl; }\n"
    "void allowed() { std::cout << std::endl; }  // lint:allow(endl)\n";

TEST(LintIncrementalCache, WarmRunScansNothingAndReplaysVerdicts) {
  TempTree tree;
  write_file(tree.path("a.cpp"), "int a = 1;\n");
  write_file(tree.path("b.cpp"), kEndlSnippet);

  LintOptions options;
  options.cache_path = tree.path("cache.json");
  const std::vector<std::string> paths = {tree.path("a.cpp"), tree.path("b.cpp")};

  const LintReport cold = lint_paths(paths, options);
  EXPECT_EQ(cold.files_scanned, 2u);
  EXPECT_EQ(cold.files_cached, 0u);
  ASSERT_EQ(cold.diagnostics.size(), 1u);
  EXPECT_EQ(cold.suppressed, 1u);

  const LintReport warm = lint_paths(paths, options);
  EXPECT_EQ(warm.files_scanned, 0u);
  EXPECT_EQ(warm.files_cached, 2u);
  ASSERT_EQ(warm.diagnostics.size(), 1u);
  EXPECT_EQ(warm.suppressed, 1u);
  EXPECT_EQ(warm.diagnostics[0].rule, cold.diagnostics[0].rule);
  EXPECT_EQ(warm.diagnostics[0].line, cold.diagnostics[0].line);
  EXPECT_EQ(warm.diagnostics[0].message, cold.diagnostics[0].message);
}

TEST(LintIncrementalCache, TouchingOneFileRescansExactlyThatFile) {
  TempTree tree;
  write_file(tree.path("a.cpp"), "int a = 1;\n");
  write_file(tree.path("b.cpp"), kEndlSnippet);

  LintOptions options;
  options.cache_path = tree.path("cache.json");
  const std::vector<std::string> paths = {tree.path("a.cpp"), tree.path("b.cpp")};

  lint_paths(paths, options);
  write_file(tree.path("a.cpp"), "int a = 1;\nint touched = 2;\n");

  const LintReport after_touch = lint_paths(paths, options);
  EXPECT_EQ(after_touch.files_scanned, 1u);
  EXPECT_EQ(after_touch.files_cached, 1u);
  ASSERT_EQ(after_touch.diagnostics.size(), 1u);
}

TEST(LintIncrementalCache, CompanionHeaderEditInvalidatesTheSource) {
  // The header feeds the .cpp's IR, so a header-only edit must re-scan the
  // .cpp even though the .cpp bytes are unchanged.
  TempTree tree;
  write_file(tree.path("src/daemon/w.cpp"), "#include \"w.hpp\"\nint w_value = 1;\n");
  write_file(tree.path("src/daemon/w.hpp"), "#pragma once\nclass W {};\n");

  LintOptions options;
  options.cache_path = tree.path("cache.json");
  const std::vector<std::string> paths = {tree.path("src/daemon/w.cpp")};

  lint_paths(paths, options);
  EXPECT_EQ(lint_paths(paths, options).files_cached, 1u);

  write_file(tree.path("src/daemon/w.hpp"), "#pragma once\nclass W { int touched_; };\n");
  const LintReport after = lint_paths(paths, options);
  EXPECT_EQ(after.files_scanned, 1u);
  EXPECT_EQ(after.files_cached, 0u);
}

TEST(LintIncrementalCache, RuleSetVersionBumpInvalidatesTheWholeCache) {
  TempTree tree;
  write_file(tree.path("a.cpp"), "int a = 1;\n");
  write_file(tree.path("b.cpp"), kEndlSnippet);

  LintOptions options;
  options.cache_path = tree.path("cache.json");
  const std::vector<std::string> paths = {tree.path("a.cpp"), tree.path("b.cpp")};
  lint_paths(paths, options);

  // Doctor the cache to look like a previous rule-set version wrote it.
  obs::JsonValue doc = obs::parse_json(read_file(options.cache_path));
  doc.set("ruleset_version", obs::JsonValue(static_cast<double>(kRuleSetVersion - 1)));
  write_file(options.cache_path, obs::write_json(doc));

  const LintReport rescans = lint_paths(paths, options);
  EXPECT_EQ(rescans.files_scanned, 2u);
  EXPECT_EQ(rescans.files_cached, 0u);
}

TEST(LintIncrementalCache, RuleFilterChangeInvalidatesTheWholeCache) {
  TempTree tree;
  write_file(tree.path("a.cpp"), "int a = 1;\n");

  LintOptions options;
  options.cache_path = tree.path("cache.json");
  const std::vector<std::string> paths = {tree.path("a.cpp")};
  lint_paths(paths, options);
  EXPECT_EQ(lint_paths(paths, options).files_cached, 1u);

  LintOptions filtered = options;
  filtered.rule_filter = {"endl"};
  const LintReport other_signature = lint_paths(paths, filtered);
  EXPECT_EQ(other_signature.files_scanned, 1u);
  EXPECT_EQ(other_signature.files_cached, 0u);
  // And the filtered signature now owns the cache: warm under the filter,
  // cold again without it.
  EXPECT_EQ(lint_paths(paths, filtered).files_cached, 1u);
  EXPECT_EQ(lint_paths(paths, options).files_cached, 0u);
}

TEST(LintIncrementalCache, HashIsStableFnv1a) {
  // Pin the hash scheme: a silent change would invalidate every deployed
  // cache without the version field explaining why.
  EXPECT_EQ(fnv1a_hash(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a_hash("a"), 12638187200555641996ull);
  EXPECT_NE(fnv1a_hash("ab"), fnv1a_hash("ba"));
}

// ---------------------------------------------------------------------------
// Parallel-scan determinism.

TEST(LintParallel, ReportIsByteIdenticalAtEveryThreadCount) {
  TempTree tree;
  // Several files with diagnostics, written in non-sorted order, so a merge
  // bug would actually reorder something.
  for (const char* name : {"f3.cpp", "f0.cpp", "f2.cpp", "f1.cpp", "f4.cpp", "f5.cpp"}) {
    write_file(tree.path(name), kEndlSnippet);
  }

  LintOptions serial;
  serial.threads = 1;
  const LintReport base = lint_paths({tree.root.string()}, serial);
  EXPECT_EQ(base.files_scanned, 6u);
  EXPECT_EQ(base.diagnostics.size(), 6u);
  const std::string base_json = obs::write_json(report_to_json(base));
  const std::string base_text = format_text(base);
  const std::string base_sarif = obs::write_json(report_to_sarif(base));

  for (const unsigned threads : {2u, 4u, 0u}) {
    LintOptions options;
    options.threads = threads;
    const LintReport report = lint_paths({tree.root.string()}, options);
    EXPECT_EQ(obs::write_json(report_to_json(report)), base_json) << threads;
    EXPECT_EQ(format_text(report), base_text) << threads;
    EXPECT_EQ(obs::write_json(report_to_sarif(report)), base_sarif) << threads;
  }
}

// ---------------------------------------------------------------------------
// Autofix engine.

TEST(LintFix, ApplyFixesIsIdempotent) {
  const std::string source =
      "#include <iostream>\n"
      "void f() { std::cout << std::endl; }\n"
      "void g() { std::cout << std::endl; }\n";
  const LintReport report = lint_source("tests/a.cpp", source, only("endl"));
  ASSERT_EQ(report.diagnostics.size(), 2u);

  std::size_t applied = 0;
  const std::string fixed = apply_fixes(source, report.diagnostics, &applied);
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(fixed.find("std::endl"), std::string::npos);
  EXPECT_NE(fixed.find("'\\n'"), std::string::npos);

  const LintReport refixed = lint_source("tests/a.cpp", fixed, only("endl"));
  EXPECT_TRUE(refixed.diagnostics.empty());
  EXPECT_EQ(apply_fixes(fixed, refixed.diagnostics), fixed);
}

TEST(LintFix, PragmaOnceFixPrependsTheGuard) {
  const std::string source = "int x = 1;\n";
  const LintReport report = lint_source("src/core/t.hpp", source, only("pragma-once"));
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const std::string fixed = apply_fixes(source, report.diagnostics);
  EXPECT_EQ(fixed, "#pragma once\nint x = 1;\n");
  EXPECT_TRUE(lint_source("src/core/t.hpp", fixed, only("pragma-once")).diagnostics.empty());
}

TEST(LintFix, FixRunRewritesFilesAndConverges) {
  TempTree tree;
  write_file(tree.path("e.cpp"),
             "#include <iostream>\n"
             "void f() { std::cout << std::endl; }\n");
  write_file(tree.path("h.hpp"), "int h_value = 1;\n");

  LintOptions fix;
  fix.fix = true;
  const std::vector<std::string> paths = {tree.path("e.cpp"), tree.path("h.hpp")};

  const LintReport first = lint_paths(paths, fix);
  EXPECT_EQ(first.fixes_applied, 2u);
  // The report reflects the fixed text: both mechanical rules are gone.
  for (const Diagnostic& d : first.diagnostics) {
    EXPECT_NE(d.rule, "endl");
    EXPECT_NE(d.rule, "pragma-once");
  }
  EXPECT_NE(read_file(tree.path("e.cpp")).find("'\\n'"), std::string::npos);
  EXPECT_EQ(read_file(tree.path("h.hpp")).rfind("#pragma once\n", 0), 0u);

  const LintReport second = lint_paths(paths, fix);
  EXPECT_EQ(second.fixes_applied, 0u);
}

// ---------------------------------------------------------------------------
// SARIF emitter.

TEST(LintSarif, StructureMatchesTheReport) {
  const LintReport report = lint_source(
      "tests/a.cpp",
      "#include <iostream>\n"
      "bool f(double x) { std::cout << std::endl; return x == 0.0; }\n");
  ASSERT_EQ(report.diagnostics.size(), 2u);

  const obs::JsonValue sarif = report_to_sarif(report);
  EXPECT_EQ(sarif.at("version").as_string(), "2.1.0");
  const auto& runs = sarif.at("runs").items();
  ASSERT_EQ(runs.size(), 1u);
  const obs::JsonValue& driver = runs[0].at("tool").at("driver");
  EXPECT_EQ(driver.at("name").as_string(), "csrlmrm-lint");
  EXPECT_EQ(driver.at("rules").items().size(), make_default_rules().size());

  const auto& results = runs[0].at("results").items();
  ASSERT_EQ(results.size(), report.diagnostics.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].at("ruleId").as_string(), report.diagnostics[i].rule);
    EXPECT_EQ(results[i].at("level").as_string(), "error");
    const obs::JsonValue& location =
        results[i].at("locations").items().at(0).at("physicalLocation");
    EXPECT_EQ(location.at("artifactLocation").at("uri").as_string(),
              report.diagnostics[i].file);
    EXPECT_EQ(location.at("region").at("startLine").as_number(),
              static_cast<double>(report.diagnostics[i].line));
  }
}

#if defined(CSRLMRM_LINT_GOLDEN_DIR)
TEST(LintSarif, GoldenDocumentIsStable) {
  // The SARIF document is an interchange contract: CI annotators key on its
  // exact shape. Any intentional change must regenerate the golden (set
  // CSRLMRM_UPDATE_GOLDEN=1 and rerun) and show up in review.
  const LintReport report = lint_source(
      "tests/golden_input.cpp",
      "#include <iostream>\n"
      "bool f(double x) { std::cout << std::endl; return x == 0.0; }\n");
  const std::string actual = obs::write_json(report_to_sarif(report)) + "\n";

  const std::string path = std::string(CSRLMRM_LINT_GOLDEN_DIR) + "/basic.sarif.json";
  if (std::getenv("CSRLMRM_UPDATE_GOLDEN") != nullptr) {
    write_file(path, actual);
    GTEST_SKIP() << "regenerated " << path;
  }
  EXPECT_EQ(read_file(path), actual)
      << "SARIF output drifted; if intentional, regenerate with CSRLMRM_UPDATE_GOLDEN=1";
}
#endif  // CSRLMRM_LINT_GOLDEN_DIR

}  // namespace
}  // namespace csrlmrm::lint

// Property test: the statistics the engines report must satisfy the
// structural invariants they advertise, on a family of random MRMs — visited
// paths dominate truncated paths, Fox-Glynn windows are ordered, and solver
// iteration counters match the solver's own result. Suites are named Stats*
// so the tsan suite picks them up.
#include <gtest/gtest.h>

#include <cstdint>

#include "checker/until.hpp"
#include "core/transform.hpp"
#include "linalg/gauss_seidel.hpp"
#include "models/random_mrm.hpp"
#include "numeric/path_explorer.hpp"
#include "numeric/transient.hpp"
#include "obs/stats.hpp"

namespace csrlmrm {
namespace {

class StatsInvariants : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void SetUp() override {
    obs::set_stats_enabled(true);
    obs::StatsRegistry::global().reset();
  }
  void TearDown() override {
    obs::StatsRegistry::global().reset();
    obs::set_stats_enabled(false);
  }

  core::Mrm make_model() const {
    models::RandomMrmConfig config;
    config.num_states = 6;
    config.max_rate = 1.0;  // Lambda*t stays small enough for path enumeration
    return models::make_random_mrm(GetParam(), config);
  }
};

TEST_P(StatsInvariants, VisitedPathsDominateTruncatedPaths) {
  const core::Mrm model = make_model();
  std::vector<bool> psi = model.labels().states_with("b");
  bool any = false;
  for (auto v : psi) any = any || v;
  if (!any) psi[GetParam() % model.num_states()] = true;
  std::vector<bool> dead(model.num_states(), false);
  const core::Mrm transformed = core::make_absorbing(model, psi);

  numeric::UniformizationUntilEngine engine(transformed, psi, dead);
  numeric::PathExplorerOptions options;
  options.truncation_probability = 1e-6;
  numeric::UntilUniformizationResult totals;
  for (core::StateIndex start = 0; start < model.num_states(); ++start) {
    const auto result = engine.compute(start, 1.5, 4.0, options);
    totals.paths_stored += result.paths_stored;
    totals.paths_truncated += result.paths_truncated;
    totals.nodes_expanded += result.nodes_expanded;
  }

  const auto& registry = obs::StatsRegistry::global();
  const std::uint64_t visited = registry.counter("uniformization.paths_visited");
  const std::uint64_t truncated = registry.counter("uniformization.paths_truncated");
  // Every truncated branch was visited first; expansion and truncation are
  // disjoint outcomes of a visit.
  EXPECT_GE(visited, truncated);
  EXPECT_GE(visited, registry.counter("uniformization.nodes_expanded"));
  // The counters are exactly the per-call result fields, summed.
  EXPECT_EQ(truncated, totals.paths_truncated);
  EXPECT_EQ(registry.counter("uniformization.nodes_expanded"), totals.nodes_expanded);
  EXPECT_EQ(registry.counter("uniformization.paths_stored"), totals.paths_stored);
  // Stored paths end at expanded nodes.
  EXPECT_LE(totals.paths_stored, totals.nodes_expanded);
  EXPECT_EQ(registry.counter("uniformization.calls"),
            static_cast<std::uint64_t>(model.num_states()));
}

TEST_P(StatsInvariants, FoxGlynnWindowIsOrdered) {
  const core::Mrm model = make_model();
  std::vector<bool> phi(model.num_states(), true);
  // A singleton psi: a universal psi (some seeds label every state "a")
  // would satisfy the until trivially and never reach the transient engine.
  std::vector<bool> psi(model.num_states(), false);
  psi[GetParam() % model.num_states()] = true;

  // Time-bounded until without a reward bound runs the P1 transient path,
  // which selects its Poisson window with Fox-Glynn.
  const auto values = checker::until_probabilities(model, phi, psi, logic::up_to(2.0),
                                                   logic::Interval{});
  ASSERT_EQ(values.size(), model.num_states());

  const auto& registry = obs::StatsRegistry::global();
  ASSERT_GE(registry.counter("fox_glynn.calls"), 1u);
  const double left = registry.gauge("fox_glynn.left");
  const double right = registry.gauge("fox_glynn.right");
  EXPECT_GE(left, 0.0);
  EXPECT_GE(right, left);
  ASSERT_GE(registry.counter("transient.calls"), 1u);
  // Each series ran one term per Poisson index in [0, right].
  EXPECT_GE(registry.counter("transient.series_terms"), right);
}

TEST_P(StatsInvariants, SolverCountersMatchSolverResult) {
  const core::Mrm model = make_model();
  std::vector<bool> phi(model.num_states(), true);
  std::vector<bool> psi = model.labels().states_with("c");
  bool any = false;
  for (auto v : psi) any = any || v;
  if (!any) psi[GetParam() % model.num_states()] = true;

  // The unbounded-until P0 path runs exactly one Gauss-Seidel solve (or
  // none when no state is in the unknown set).
  const auto probabilities = checker::unbounded_until_probabilities(model, phi, psi);
  ASSERT_EQ(probabilities.size(), model.num_states());

  const auto& registry = obs::StatsRegistry::global();
  const std::uint64_t calls = registry.counter("solver.gauss_seidel.calls");
  ASSERT_LE(calls, 1u);
  obs::StatsRegistry::global().reset();

  // Direct solve: the iteration counter must equal the reported iterations,
  // and a converged result means the loop stopped below tolerance.
  linalg::CsrBuilder builder(3, 3);
  builder.add(0, 0, 4.0);
  builder.add(0, 1, -1.0);
  builder.add(1, 0, -1.0);
  builder.add(1, 1, 4.0);
  builder.add(1, 2, -1.0);
  builder.add(2, 1, -1.0);
  builder.add(2, 2, 4.0);
  std::vector<double> b{1.0, 2.0, 3.0};
  std::vector<double> x(3, 0.0);
  linalg::IterativeOptions options;
  const auto outcome = linalg::gauss_seidel_solve(builder.build(), b, x, options);
  EXPECT_TRUE(outcome.converged);
  EXPECT_LT(outcome.final_delta, options.tolerance);
  EXPECT_EQ(registry.counter("solver.gauss_seidel.iterations"), outcome.iterations);
  EXPECT_EQ(registry.counter("solver.gauss_seidel.calls"), 1u);
  EXPECT_LE(outcome.iterations, options.max_iterations);
}

INSTANTIATE_TEST_SUITE_P(RandomModels, StatsInvariants, ::testing::Range(1u, 31u));

}  // namespace
}  // namespace csrlmrm

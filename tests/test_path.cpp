// TimedPath semantics (Definition 3.3), pinned to the thesis's worked
// Example 3.2 on the WaveLAN model.
#include "core/path.hpp"

#include <gtest/gtest.h>

#include "models/wavelan.hpp"

namespace csrlmrm::core {
namespace {

TimedPath example_32_path() {
  // sigma = 1 -10-> 2 -4-> 3 -2-> 4 -3.75-> 3 -1-> 5 -2.5-> 3 -5-> ...
  // (thesis 1-based states; 0-based here).
  return TimedPath({{models::kWavelanOff, 10.0},
                    {models::kWavelanSleep, 4.0},
                    {models::kWavelanIdle, 2.0},
                    {models::kWavelanReceive, 3.75},
                    {models::kWavelanIdle, 1.0},
                    {models::kWavelanTransmit, 2.5},
                    {models::kWavelanIdle, 5.0}});
}

TEST(TimedPath, IndexingMatchesDefinition) {
  const TimedPath path = example_32_path();
  EXPECT_EQ(path.length(), 7u);
  EXPECT_EQ(path.state(0), models::kWavelanOff);
  EXPECT_EQ(path.state(5), models::kWavelanTransmit);
  EXPECT_DOUBLE_EQ(path.residence_time(3), 3.75);
  EXPECT_THROW(path.state(7), std::out_of_range);
}

TEST(TimedPath, StateAtMatchesExample32) {
  // sigma@21.75 = sigma[5] = transmit (cumulative 20.75 < 21.75 <= 23.25).
  EXPECT_EQ(example_32_path().state_at(21.75), models::kWavelanTransmit);
}

TEST(TimedPath, StateAtBoundaryBelongsToEarlierState) {
  // At exactly the cumulative boundary the earlier state is occupied
  // (Definition 3.3 uses sum_{j<=i} t_j >= t).
  EXPECT_EQ(example_32_path().state_at(10.0), models::kWavelanOff);
  EXPECT_EQ(example_32_path().state_at(10.0 + 1e-9), models::kWavelanSleep);
}

TEST(TimedPath, StateAtZeroIsInitialState) {
  EXPECT_EQ(example_32_path().state_at(0.0), models::kWavelanOff);
}

TEST(TimedPath, StateAtBeyondPrefixThrows) {
  EXPECT_THROW(example_32_path().state_at(30.0), std::out_of_range);
  EXPECT_THROW(example_32_path().state_at(-1.0), std::out_of_range);
}

TEST(TimedPath, AccumulatedRewardMatchesExample32) {
  // y_sigma(21.75) = 11983.25 mWs + 1.13715 mJ = 11984.38715 (thesis).
  const core::Mrm model = models::make_wavelan();
  EXPECT_NEAR(example_32_path().accumulated_reward(model, 21.75), 11984.38715, 1e-9);
}

TEST(TimedPath, AccumulatedRewardAtZeroIsZero) {
  const core::Mrm model = models::make_wavelan();
  EXPECT_DOUBLE_EQ(example_32_path().accumulated_reward(model, 0.0), 0.0);
}

TEST(TimedPath, AccumulatedRewardCountsImpulseOnlyAfterTransition) {
  const core::Mrm model = models::make_wavelan();
  const TimedPath path = example_32_path();
  // Just before leaving off: pure residence reward (rho(off) = 0).
  EXPECT_DOUBLE_EQ(path.accumulated_reward(model, 10.0), 0.0);
  // Just after: the off->sleep impulse (0.02) has been paid.
  const double later = path.accumulated_reward(model, 10.5);
  EXPECT_NEAR(later, 0.02 + 80.0 * 0.5, 1e-12);
}

TEST(TimedPath, FinitePathEndsWithInfiniteResidence) {
  const TimedPath path({{0, 1.0}, {1, kInfiniteResidence}});
  EXPECT_TRUE(path.is_finite_path());
  EXPECT_FALSE(example_32_path().is_finite_path());
  EXPECT_EQ(path.state_at(1e12), 1u);
}

TEST(TimedPath, RejectsMalformedSteps) {
  EXPECT_THROW(TimedPath({}), std::invalid_argument);
  EXPECT_THROW(TimedPath({{0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(TimedPath({{0, -1.0}}), std::invalid_argument);
  // Infinite residence only allowed at the end.
  EXPECT_THROW(TimedPath({{0, kInfiniteResidence}, {1, 1.0}}), std::invalid_argument);
}

TEST(TimedPath, AccumulatedRewardRejectsNonTransitionSteps) {
  const core::Mrm model = models::make_wavelan();
  // off -> idle is not a transition of the WaveLAN model.
  const TimedPath bogus({{models::kWavelanOff, 1.0}, {models::kWavelanIdle, 1.0}});
  EXPECT_THROW(bogus.accumulated_reward(model, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::core

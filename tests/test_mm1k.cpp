// The energy-aware M/M/1/K queue model: structure and classical queueing
// closed forms through the checker.
#include "models/mm1k.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "checker/sat.hpp"
#include "checker/steady.hpp"
#include "logic/parser.hpp"

namespace csrlmrm::models {
namespace {

TEST(Mm1k, StructureMatchesBirthDeathChain) {
  const core::Mrm model = make_mm1k({4, 0.8, 1.0, 1.0, 5.0, 2.0});
  ASSERT_EQ(model.num_states(), 5u);
  EXPECT_DOUBLE_EQ(model.rates().rate(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(model.rates().rate(3, 4), 0.8);
  EXPECT_DOUBLE_EQ(model.rates().rate(4, 3), 1.0);
  EXPECT_DOUBLE_EQ(model.rates().rate(4, 0), 0.0);
  // The full buffer drops arrivals: no outgoing arrival edge.
  EXPECT_DOUBLE_EQ(model.rates().exit_rate(4), 1.0);
}

TEST(Mm1k, LabelsDescribeOccupancy) {
  const core::Mrm model = make_mm1k({4, 0.8, 1.0, 1.0, 5.0, 2.0});
  EXPECT_TRUE(model.labels().has(0, "empty"));
  EXPECT_FALSE(model.labels().has(0, "busy"));
  EXPECT_TRUE(model.labels().has(1, "busy"));
  EXPECT_TRUE(model.labels().has(4, "full"));
  EXPECT_FALSE(model.labels().has(3, "full"));
  EXPECT_TRUE(model.labels().has(2, "halfFull"));
  EXPECT_FALSE(model.labels().has(1, "halfFull"));
}

TEST(Mm1k, WakeupImpulseOnlyOnFirstArrival) {
  const core::Mrm model = make_mm1k({3, 0.8, 1.0, 1.0, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(model.impulse_reward(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(model.impulse_reward(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(model.impulse_reward(1, 0), 0.0);
}

TEST(Mm1k, SteadyStateMatchesTextbookFormula) {
  // M/M/1/K: pi_k = rho^k (1-rho) / (1 - rho^{K+1}).
  const double lambda = 0.6;
  const double mu = 1.0;
  const unsigned k = 5;
  const core::Mrm model = make_mm1k({k, lambda, mu, 1.0, 5.0, 2.0});
  const auto pi = checker::steady_state_distribution(model, 0);
  const double rho = lambda / mu;
  const double normalizer = (1.0 - std::pow(rho, k + 1)) / (1.0 - rho);
  for (unsigned jobs = 0; jobs <= k; ++jobs) {
    EXPECT_NEAR(pi[jobs], std::pow(rho, jobs) / normalizer, 1e-9) << "jobs=" << jobs;
  }
}

TEST(Mm1k, BlockingProbabilityThroughTheLogic) {
  const double lambda = 0.9;
  const double mu = 1.0;
  const unsigned k = 3;
  const core::Mrm model = make_mm1k({k, lambda, mu, 1.0, 5.0, 2.0});
  const double rho = lambda / mu;
  const double pi_full =
      std::pow(rho, k) * (1.0 - rho) / (1.0 - std::pow(rho, k + 1));
  checker::ModelChecker checker(model);
  // The steady-state formula brackets the true blocking probability.
  const std::string above = "S(>" + std::to_string(pi_full * 0.99) + ") full";
  const std::string below = "S(>" + std::to_string(pi_full * 1.01) + ") full";
  EXPECT_TRUE(checker.satisfies(0, logic::parse_formula(above)));
  EXPECT_FALSE(checker.satisfies(0, logic::parse_formula(below)));
}

TEST(Mm1k, RejectsBadConfiguration) {
  EXPECT_THROW(make_mm1k({0, 1.0, 1.0, 1.0, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(make_mm1k({3, 0.0, 1.0, 1.0, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(make_mm1k({3, 1.0, -1.0, 1.0, 1.0, 0.0}), std::invalid_argument);
}

TEST(Mm1k, ZeroWakeupEnergyMeansNoImpulses) {
  const core::Mrm model = make_mm1k({3, 1.0, 1.0, 1.0, 5.0, 0.0});
  EXPECT_FALSE(model.has_impulse_rewards());
}

}  // namespace
}  // namespace csrlmrm::models

#include "core/labels.hpp"

#include <gtest/gtest.h>

namespace csrlmrm::core {
namespace {

TEST(Labeling, NewLabelingIsEmpty) {
  Labeling labels(3);
  EXPECT_EQ(labels.num_states(), 3u);
  EXPECT_FALSE(labels.has(0, "a"));
  EXPECT_TRUE(labels.labels_of(0).empty());
  EXPECT_TRUE(labels.propositions().empty());
}

TEST(Labeling, AddAttachesAndDeclares) {
  Labeling labels(2);
  labels.add(1, "busy");
  EXPECT_TRUE(labels.is_declared("busy"));
  EXPECT_TRUE(labels.has(1, "busy"));
  EXPECT_FALSE(labels.has(0, "busy"));
}

TEST(Labeling, DeclareWithoutAttachIsKnownButHoldsNowhere) {
  Labeling labels(2);
  labels.declare("rare");
  EXPECT_TRUE(labels.is_declared("rare"));
  EXPECT_EQ(labels.states_with("rare"), std::vector<bool>({false, false}));
}

TEST(Labeling, UndeclaredPropositionHoldsNowhere) {
  Labeling labels(2);
  EXPECT_EQ(labels.states_with("ghost"), std::vector<bool>({false, false}));
}

TEST(Labeling, AddIsIdempotent) {
  Labeling labels(1);
  labels.add(0, "a");
  labels.add(0, "a");
  EXPECT_EQ(labels.labels_of(0), std::vector<std::string>{"a"});
}

TEST(Labeling, StatesWithBuildsMask) {
  Labeling labels(4);
  labels.add(0, "up");
  labels.add(2, "up");
  labels.add(2, "busy");
  EXPECT_EQ(labels.states_with("up"), std::vector<bool>({true, false, true, false}));
  EXPECT_EQ(labels.states_with("busy"), std::vector<bool>({false, false, true, false}));
}

TEST(Labeling, LabelsOfReportsDeclarationOrder) {
  Labeling labels(1);
  labels.add(0, "b");
  labels.add(0, "a");
  // Declaration order: b first.
  EXPECT_EQ(labels.labels_of(0), (std::vector<std::string>{"b", "a"}));
}

TEST(Labeling, PropositionsListAllDeclared) {
  Labeling labels(2);
  labels.add(0, "x");
  labels.declare("y");
  EXPECT_EQ(labels.propositions(), (std::vector<std::string>{"x", "y"}));
}

TEST(Labeling, RejectsOutOfRangeStates) {
  Labeling labels(2);
  EXPECT_THROW(labels.add(2, "a"), std::out_of_range);
  EXPECT_THROW(labels.has(5, "a"), std::out_of_range);
  EXPECT_THROW(labels.labels_of(2), std::out_of_range);
}

TEST(Labeling, ManyPropositionsPerState) {
  Labeling labels(1);
  for (int i = 0; i < 50; ++i) labels.add(0, "ap" + std::to_string(i));
  EXPECT_EQ(labels.labels_of(0).size(), 50u);
  EXPECT_TRUE(labels.has(0, "ap31"));
}

}  // namespace
}  // namespace csrlmrm::core

// Performability measures (Definition 3.4): Pr{Y(t) <= r}, its CDF, the
// expected accumulated reward and long-run reward rates — cross-checked
// against closed forms, the simulator, and between engines.
#include "checker/performability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/mm1k.hpp"
#include "models/wavelan.hpp"
#include "sim/simulator.hpp"

namespace csrlmrm::checker {
namespace {

CheckerOptions tight(double w = 1e-12) {
  CheckerOptions options;
  options.uniformization.truncation_probability = w;
  return options;
}

TEST(Performability, SingleStateIsDeterministic) {
  // One absorbing state with rho = 3: Y(t) = 3t exactly. The uniformization
  // engine sums truncated path prefixes, so the "1" case carries the
  // truncated Poisson tail within its reported error bound; the "0" case is
  // exact (every signature class evaluates to conditional probability 0).
  const core::Mrm model(core::Ctmc(core::RateMatrixBuilder(1).build(), core::Labeling(1)),
                        {3.0});
  const auto certain = performability(model, 0, 2.0, 6.0, tight());
  EXPECT_NEAR(certain.probability, 1.0, certain.error_bound + 1e-15);
  EXPECT_DOUBLE_EQ(performability(model, 0, 2.0, 5.9, tight()).probability, 0.0);
}

TEST(Performability, TwoStateChainMatchesHandComputation) {
  // 0 (rho = 2) -> 1 (rho = 0, absorbing) at rate mu: Y(t) = 2 min(T, t),
  // T ~ Exp(mu). Pr{Y(t) <= r} for r < 2t is Pr{T <= r/2} = 1 - e^{-mu r/2}.
  const double mu = 0.9;
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, mu);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)), {2.0, 0.0});
  const double t = 4.0;
  const double r = 3.0;  // < 2t = 8
  const auto value = performability(model, 0, t, r, tight(1e-14));
  EXPECT_NEAR(value.probability, 1.0 - std::exp(-mu * r / 2.0), 1e-8);
  // r >= 2t: certain.
  EXPECT_NEAR(performability(model, 0, t, 8.5, tight(1e-14)).probability, 1.0, 1e-9);
}

TEST(Performability, EnginesAgreeOnMm1k) {
  const core::Mrm model = models::make_mm1k({4, 0.5, 1.0, 1.0, 3.0, 1.0});
  const double t = 3.0;
  const double r = 8.0;
  const auto by_uniformization = performability(model, 0, t, r, tight(1e-12));
  CheckerOptions discretization;
  discretization.until_method = UntilMethod::kDiscretization;
  discretization.discretization.step = 1.0 / 128.0;
  const auto by_discretization = performability(model, 0, t, r, discretization);
  EXPECT_NEAR(by_uniformization.probability, by_discretization.probability, 0.02);
}

TEST(Performability, MatchesSimulationOnWavelan) {
  const core::Mrm model = models::make_wavelan();
  const double t = 0.5;
  const double r = 400.0;
  const auto exact = performability(model, models::kWavelanOff, t, r, tight(1e-13));
  const auto simulated =
      sim::estimate_performability(model, models::kWavelanOff, t, r, {200000, 31});
  EXPECT_NEAR(exact.probability, simulated.mean, 3.0 * simulated.half_width_95 / 1.96);
}

TEST(Performability, CdfIsMonotoneAndReachesOne) {
  const core::Mrm model = models::make_mm1k({3, 0.5, 1.0, 1.0, 4.0, 2.0});
  const std::vector<double> bounds{0.5, 2.0, 5.0, 10.0, 100.0};
  const auto cdf = performability_cdf(model, 0, 2.0, bounds, tight(1e-12));
  double prev = -1.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_GE(cdf[i].probability, prev - 1e-12);
    prev = cdf[i].probability;
  }
  EXPECT_NEAR(cdf.back().probability, 1.0, 1e-6);
}

TEST(ExpectedReward, SingleStateIsRateTimesTime) {
  const core::Mrm model(core::Ctmc(core::RateMatrixBuilder(1).build(), core::Labeling(1)),
                        {3.0});
  EXPECT_NEAR(expected_accumulated_reward(model, 0, 7.0), 21.0, 1e-9);
}

TEST(ExpectedReward, PureDeathChainMatchesClosedForm) {
  // 0 (rho = c) -> 1 (rho = 0) at mu with impulse iota:
  // E[Y(t)] = c E[min(T,t)] + iota Pr{T <= t}
  //         = (c/mu)(1 - e^{-mu t}) + iota (1 - e^{-mu t}).
  const double mu = 0.6;
  const double c = 2.0;
  const double iota = 1.5;
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, mu);
  core::ImpulseRewardsBuilder impulses(2);
  impulses.add(0, 1, iota);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(2)), {c, 0.0},
                        impulses.build());
  for (double t : {0.5, 2.0, 10.0}) {
    const double expected = (c / mu + iota) * (1.0 - std::exp(-mu * t));
    EXPECT_NEAR(expected_accumulated_reward(model, 0, t), expected, 1e-8) << "t=" << t;
  }
}

TEST(ExpectedReward, AgreesWithSimulation) {
  const core::Mrm model = models::make_mm1k({4, 0.7, 1.0, 1.0, 5.0, 2.0});
  const double t = 6.0;
  const double exact = expected_accumulated_reward(model, 0, t);
  const auto simulated = sim::estimate_expected_reward(model, 0, t, {100000, 41});
  EXPECT_NEAR(exact, simulated.mean, 3.0 * simulated.half_width_95 / 1.96);
}

TEST(LongRunRewardRate, MatchesExpectedRewardSlope) {
  const core::Mrm model = models::make_wavelan();
  const auto rates = long_run_reward_rate(model);
  // Strongly connected: every start state has the same rate.
  for (std::size_t s = 1; s < 5; ++s) EXPECT_NEAR(rates[s], rates[0], 1e-9);
  // E[Y(t)] / t converges to the long-run rate.
  const double t = 2000.0;
  EXPECT_NEAR(expected_accumulated_reward(model, 0, t) / t, rates[0], 0.01 * rates[0]);
}

TEST(LongRunRewardRate, MultiBsccModelDependsOnStart) {
  // 0 -> 1 or 0 -> 2 (absorbing, different rewards): the long-run rate from
  // 1 is rho(1), from 2 is rho(2), from 0 the mixture.
  core::RateMatrixBuilder rates(3);
  rates.add(0, 1, 1.0);
  rates.add(0, 2, 3.0);
  const core::Mrm model(core::Ctmc(rates.build(), core::Labeling(3)), {0.0, 4.0, 8.0});
  const auto rate = long_run_reward_rate(model);
  EXPECT_NEAR(rate[1], 4.0, 1e-9);
  EXPECT_NEAR(rate[2], 8.0, 1e-9);
  EXPECT_NEAR(rate[0], 0.25 * 4.0 + 0.75 * 8.0, 1e-9);
}

TEST(Performability, RejectsBadStart) {
  const core::Mrm model = models::make_wavelan();
  EXPECT_THROW(expected_accumulated_reward(model, 99, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace csrlmrm::checker

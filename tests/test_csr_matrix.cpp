#include "linalg/csr_matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace csrlmrm::linalg {
namespace {

CsrMatrix example_matrix() {
  // [ 1 2 0 ]
  // [ 0 0 3 ]
  // [ 4 0 5 ]
  CsrBuilder builder(3, 3);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 2.0);
  builder.add(1, 2, 3.0);
  builder.add(2, 0, 4.0);
  builder.add(2, 2, 5.0);
  return builder.build();
}

TEST(CsrBuilder, RejectsOutOfRangeIndices) {
  CsrBuilder builder(2, 2);
  EXPECT_THROW(builder.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(builder.add(0, 2, 1.0), std::out_of_range);
}

TEST(CsrBuilder, RejectsNonFiniteValues) {
  CsrBuilder builder(1, 1);
  EXPECT_THROW(builder.add(0, 0, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(builder.add(0, 0, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(CsrBuilder, MergesDuplicateTriplets) {
  CsrBuilder builder(1, 1);
  builder.add(0, 0, 1.5);
  builder.add(0, 0, 2.5);
  const CsrMatrix m = builder.build();
  EXPECT_EQ(m.non_zeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);
}

TEST(CsrBuilder, DropsEntriesCancellingToZero) {
  CsrBuilder builder(1, 2);
  builder.add(0, 1, 1.0);
  builder.add(0, 1, -1.0);
  EXPECT_EQ(builder.build().non_zeros(), 0u);
}

TEST(CsrBuilder, AcceptsTripletsInAnyOrder) {
  CsrBuilder builder(2, 2);
  builder.add(1, 1, 4.0);
  builder.add(0, 1, 2.0);
  builder.add(1, 0, 3.0);
  builder.add(0, 0, 1.0);
  const CsrMatrix m = builder.build();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
}

TEST(CsrMatrix, DefaultConstructedIsEmpty) {
  const CsrMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_EQ(m.non_zeros(), 0u);
}

TEST(CsrMatrix, AtReturnsZeroForMissingEntries) {
  const CsrMatrix m = example_matrix();
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
}

TEST(CsrMatrix, RowSpansAreOrdered) {
  const CsrMatrix m = example_matrix();
  const auto row2 = m.row(2);
  ASSERT_EQ(row2.size(), 2u);
  EXPECT_EQ(row2[0].col, 0u);
  EXPECT_EQ(row2[1].col, 2u);
}

TEST(CsrMatrix, RowRejectsOutOfRange) {
  EXPECT_THROW(example_matrix().row(3), std::out_of_range);
}

TEST(CsrMatrix, MultiplyComputesMatrixVectorProduct) {
  const auto y = example_matrix().multiply({1.0, 2.0, 3.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 5.0);   // 1 + 4
  EXPECT_DOUBLE_EQ(y[1], 9.0);   // 3*3
  EXPECT_DOUBLE_EQ(y[2], 19.0);  // 4 + 15
}

TEST(CsrMatrix, LeftMultiplyComputesVectorMatrixProduct) {
  const auto y = example_matrix().left_multiply({1.0, 2.0, 3.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 13.0);  // 1 + 12
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 21.0);  // 6 + 15
}

TEST(CsrMatrix, MultiplyRejectsSizeMismatch) {
  EXPECT_THROW(example_matrix().multiply({1.0}), std::invalid_argument);
  EXPECT_THROW(example_matrix().left_multiply({1.0}), std::invalid_argument);
}

TEST(CsrMatrix, RowSumAddsRowEntries) {
  const CsrMatrix m = example_matrix();
  EXPECT_DOUBLE_EQ(m.row_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 3.0);
  EXPECT_DOUBLE_EQ(m.row_sum(2), 9.0);
}

TEST(CsrMatrix, TransposeSwapsIndices) {
  const CsrMatrix t = example_matrix().transposed();
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(t.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(t.at(2, 2), 5.0);
  EXPECT_EQ(t.non_zeros(), example_matrix().non_zeros());
}

TEST(CsrMatrix, DoubleTransposeIsIdentityOperation) {
  const CsrMatrix m = example_matrix();
  const CsrMatrix tt = m.transposed().transposed();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(tt.at(r, c), m.at(r, c));
  }
}

TEST(CsrMatrix, ToDenseMatchesAt) {
  const auto dense = example_matrix().to_dense();
  EXPECT_DOUBLE_EQ(dense[2][0], 4.0);
  EXPECT_DOUBLE_EQ(dense[1][1], 0.0);
}

TEST(CsrMatrix, RawConstructorValidatesRowPtr) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {{0, 1.0}}), std::invalid_argument);  // short row_ptr
  EXPECT_THROW(CsrMatrix(1, 1, {0, 2}, {{0, 1.0}}), std::invalid_argument);  // bad back()
  EXPECT_THROW(CsrMatrix(1, 1, {0, 1}, {{5, 1.0}}), std::invalid_argument);  // col range
}

}  // namespace
}  // namespace csrlmrm::linalg

// The streamed generator substrate (src/models/generator.hpp): BFS
// exploration into CSR, the three model families, and the spec parser.
//
// The load-bearing property is bitwise round-trip fidelity: exploring a
// generator and materializing it through save_mrm/load_mrm must produce the
// SAME model, entry for entry and bit for bit — that is what lets the
// million-state benchmarks trust the streamed path to mean exactly what the
// file-based path always meant.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/approx.hpp"
#include "io/model_files.hpp"
#include "models/crowd_epidemic.hpp"
#include "models/generator.hpp"
#include "models/grid_network.hpp"
#include "models/virus_spread.hpp"

namespace csrlmrm {
namespace {

void expect_same_matrix(const linalg::CsrMatrix& a, const linalg::CsrMatrix& b,
                        const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.non_zeros(), b.non_zeros()) << what;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row_a = a.row(r);
    const auto row_b = b.row(r);
    ASSERT_EQ(row_a.size(), row_b.size()) << what << " row " << r;
    for (std::size_t j = 0; j < row_a.size(); ++j) {
      EXPECT_EQ(row_a[j].col, row_b[j].col) << what << " row " << r;
      EXPECT_TRUE(core::exactly_equal(row_a[j].value, row_b[j].value))
          << what << " row " << r << " col " << row_a[j].col;
    }
  }
}

void expect_same_model(const core::Mrm& a, const core::Mrm& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  expect_same_matrix(a.rates().matrix(), b.rates().matrix(), "rates");
  expect_same_matrix(a.impulse_rewards(), b.impulse_rewards(), "impulses");
  for (core::StateIndex s = 0; s < a.num_states(); ++s) {
    EXPECT_TRUE(core::exactly_equal(a.state_reward(s), b.state_reward(s))) << s;
    EXPECT_EQ(a.labels().labels_of(s), b.labels().labels_of(s)) << s;
  }
}

TEST(Generator, StreamedBuildBitwiseEqualsMaterializedBuild) {
  const char* specs[] = {"grid:width=5,height=4", "crowd:population=12",
                         "virus:hosts=5,infect=1.5"};
  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    const core::Mrm streamed = models::make_generated_mrm(spec);
    const std::string prefix =
        (std::filesystem::temp_directory_path() /
         ("csrlmrm_gen_" + std::to_string(::getpid() % 100000) + "_" +
          std::to_string(streamed.num_states())))
            .string();
    io::save_mrm(streamed, prefix);
    const core::Mrm loaded =
        io::load_mrm(prefix + ".tra", prefix + ".lab", prefix + ".rewr", prefix + ".rewi");
    expect_same_model(streamed, loaded);
    for (const char* ext : {".tra", ".lab", ".rewr", ".rewi"}) {
      std::filesystem::remove(prefix + ext);
    }
  }
}

TEST(Generator, ExplorationIsDeterministic) {
  const core::Mrm a = models::make_generated_mrm("crowd:population=15,contact=0.9");
  const core::Mrm b = models::make_generated_mrm("crowd:population=15,contact=0.9");
  expect_same_model(a, b);
}

TEST(Generator, GridFamilyInvariants) {
  const core::Mrm model = models::make_generated_mrm("grid:width=6,height=5");
  EXPECT_EQ(model.num_states(), 30u);
  const auto delivered = model.labels().states_with("delivered");
  std::size_t sinks = 0;
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    if (delivered[s]) {
      ++sinks;
      EXPECT_TRUE(model.rates().is_absorbing(s)) << "sink must absorb";
    } else {
      EXPECT_FALSE(model.rates().is_absorbing(s));
      // Every hop carries the hop-energy impulse.
      EXPECT_EQ(model.impulse_rewards().row(s).size(), model.rates().transitions(s).size());
    }
  }
  EXPECT_EQ(sinks, 1u);
  EXPECT_TRUE(model.labels().has(0, "start"));
}

TEST(Generator, CrowdFamilyInvariants) {
  const core::Mrm model = models::make_generated_mrm("crowd:population=10");
  // Triangle s + i <= N, but only states reachable from (N-1, 1).
  const auto extinct = model.labels().states_with("extinct");
  bool any_extinct = false;
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    if (extinct[s]) {
      any_extinct = true;
      EXPECT_TRUE(model.rates().is_absorbing(s)) << "extinct epidemic must absorb";
      EXPECT_TRUE(core::exactly_zero(model.state_reward(s)));
    }
  }
  EXPECT_TRUE(any_extinct);
}

TEST(Generator, VirusFamilyInvariants) {
  const core::Mrm model = models::make_generated_mrm("virus:hosts=4");
  EXPECT_EQ(model.num_states(), 16u);  // every infection mask is reachable
  const auto clean = model.labels().states_with("clean");
  for (core::StateIndex s = 0; s < model.num_states(); ++s) {
    if (clean[s]) {
      EXPECT_TRUE(model.rates().is_absorbing(s));
    }
  }
}

TEST(Generator, MaxStatesGuardFires) {
  models::ExploreOptions options;
  options.max_states = 10;
  EXPECT_THROW(models::make_generated_mrm("grid:width=16,height=16", options),
               std::runtime_error);
}

TEST(Generator, RejectsUnknownFamilyWithAvailableList) {
  try {
    models::make_generated_mrm("mesh:width=4");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("unknown generator family 'mesh'"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("crowd, grid, virus"), std::string::npos);
  }
}

TEST(Generator, RejectsUnknownAndMalformedParameters) {
  EXPECT_THROW(models::make_generated_mrm("grid:sidelength=4"), std::invalid_argument);
  EXPECT_THROW(models::make_generated_mrm("grid:width"), std::invalid_argument);
  EXPECT_THROW(models::make_generated_mrm("grid:width=abc"), std::invalid_argument);
  EXPECT_THROW(models::make_generated_mrm("crowd:population=-3"), std::invalid_argument);
  EXPECT_THROW(models::make_generated_mrm("virus:hosts=40"), std::invalid_argument);
  EXPECT_THROW(models::make_generated_mrm(""), std::invalid_argument);
}

TEST(Generator, FamilyListIsSorted) {
  const auto families = models::generator_families();
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0], "crowd");
  EXPECT_EQ(families[1], "grid");
  EXPECT_EQ(families[2], "virus");
}

}  // namespace
}  // namespace csrlmrm

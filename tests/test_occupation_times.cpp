// Expected occupation times E[L_s(t)] by uniformization.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/transient.hpp"

namespace csrlmrm::numeric {
namespace {

TEST(OccupationTimes, SumToTheHorizon) {
  core::RateMatrixBuilder rates(3);
  rates.add(0, 1, 1.0);
  rates.add(1, 2, 0.5);
  rates.add(2, 0, 2.0);
  const auto matrix = rates.build();
  for (double t : {0.5, 3.0, 20.0}) {
    const auto occupation = expected_occupation_times(matrix, {1.0, 0.0, 0.0}, t);
    double total = 0.0;
    for (double l : occupation) total += l;
    EXPECT_NEAR(total, t, 1e-8) << "t=" << t;
  }
}

TEST(OccupationTimes, AbsorbingChainMatchesClosedForm) {
  // 0 -> 1 at mu: E[L_0(t)] = E[min(T,t)] = (1 - e^{-mu t}) / mu.
  const double mu = 0.8;
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, mu);
  const auto matrix = rates.build();
  for (double t : {0.25, 1.0, 5.0, 50.0}) {
    const auto occupation = expected_occupation_times(matrix, {1.0, 0.0}, t);
    const double expected = (1.0 - std::exp(-mu * t)) / mu;
    EXPECT_NEAR(occupation[0], expected, 1e-8) << "t=" << t;
    EXPECT_NEAR(occupation[1], t - expected, 1e-8);
  }
}

TEST(OccupationTimes, LongHorizonFollowsSteadyState) {
  // Two-state chain a=1, b=3: pi = (3/4, 1/4); L_s(t)/t -> pi_s.
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  rates.add(1, 0, 3.0);
  const auto occupation = expected_occupation_times(rates.build(), {1.0, 0.0}, 500.0);
  EXPECT_NEAR(occupation[0] / 500.0, 0.75, 1e-3);
  EXPECT_NEAR(occupation[1] / 500.0, 0.25, 1e-3);
}

TEST(OccupationTimes, ZeroHorizonIsZero) {
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  const auto occupation = expected_occupation_times(rates.build(), {0.5, 0.5}, 0.0);
  EXPECT_DOUBLE_EQ(occupation[0], 0.0);
  EXPECT_DOUBLE_EQ(occupation[1], 0.0);
}

TEST(OccupationTimes, AllAbsorbingSplitsByInitialDistribution) {
  const auto occupation =
      expected_occupation_times(core::RateMatrixBuilder(2).build(), {0.25, 0.75}, 8.0);
  EXPECT_DOUBLE_EQ(occupation[0], 2.0);
  EXPECT_DOUBLE_EQ(occupation[1], 6.0);
}

TEST(OccupationTimes, RejectsBadInput) {
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 1.0);
  const auto matrix = rates.build();
  EXPECT_THROW(expected_occupation_times(matrix, {1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(expected_occupation_times(matrix, {0.7, 0.7}, 1.0), std::invalid_argument);
  EXPECT_THROW(expected_occupation_times(matrix, {1.0, 0.0}, -1.0), std::invalid_argument);
}

TEST(UniformizedTransitionMatrix, IsSharedAndStochastic) {
  core::RateMatrixBuilder rates(2);
  rates.add(0, 1, 2.0);
  rates.add(1, 0, 1.0);
  double lambda = 0.0;
  const auto P = uniformized_transition_matrix(rates.build(), lambda);
  EXPECT_DOUBLE_EQ(lambda, 2.0);
  EXPECT_NEAR(P.row_sum(0), 1.0, 1e-12);
  EXPECT_NEAR(P.row_sum(1), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(P.at(1, 1), 0.5);
}

}  // namespace
}  // namespace csrlmrm::numeric
